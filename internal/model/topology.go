// Interaction topology: the scenario axis that generalizes the paper's
// complete interaction graph to graphical population protocols
// (Alistarh–Gelashvili–Rybicki, arXiv:2102.08808), where the scheduler
// samples *edges* of a fixed graph G instead of arbitrary agent pairs.
//
// A Topology names a graph family (plus its parameter); Build instantiates
// it for a population size and seed as a Graph — a CSR adjacency the edge
// schedulers (sched.EdgeRandom) and the topology-aware sharded runner sample
// from. Randomized families (random d-regular, preferential attachment) are
// deterministic per (n, seed): the same spec always yields the same graph,
// which is what makes topology part of a scenario's content-addressed
// identity (serve.Spec).
//
// Every family builds a CONNECTED graph (d-regular multigraphs are repaired
// by degree-preserving rewiring), because uniform edge scheduling on a
// connected graph is globally fair with probability 1 — protocol correctness
// under global fairness transfers, and only convergence TIME changes with
// the topology. Protocols whose convergence argument needs more than global
// fairness (e.g. static pairwise-elimination leader election, whose two last
// leaders never meet unless adjacent) genuinely do not compute on sparse
// graphs — that separation is the point of the axis, not a bug.
package model

import (
	"fmt"
	"strconv"
	"strings"

	"popsim/internal/sched"
)

// topoFamily enumerates the built-in graph families.
type topoFamily uint8

const (
	topoComplete topoFamily = iota
	topoCycle
	topoGrid
	topoCliques
	topoRegular
	topoPowerlaw
)

// Default parameters of the parameterized families.
const (
	defaultCliqueSize = 8
	defaultRegularDeg = 4
	defaultPowerlawM  = 3
)

// topologyStreamIndex is the sched.SplitStream index family the graph
// generators draw from — far above any worker-shard index and distinct from
// the counts sampler's stream, so a topology build never shares draws with
// the execution that runs on it.
const topologyStreamIndex = 1 << 27

// Topology identifies an interaction-graph family with its parameter — the
// scenario axis value, independent of the population size. The zero value is
// the complete graph (the paper's setting and the historical behavior of
// every scheduler). Parse one with ParseTopology; instantiate it for a
// population with Build.
type Topology struct {
	fam   topoFamily
	param int
}

// ParseTopology parses a topology name:
//
//	complete            every pair may interact (the default; "" parses to it)
//	cycle               ring, degree 2
//	grid                2D torus grid (requires a composite population size)
//	cliques[:k]         ring of bridged k-cliques (default k = 8)
//	regular[:d]         random d-regular multigraph, connected (default d = 4)
//	powerlaw[:m]        preferential attachment, m edges per new vertex
//	                    (default m = 3)
//
// The canonical form (String) always spells the parameter of parameterized
// families, so "regular" and "regular:4" canonicalize identically.
func ParseTopology(s string) (Topology, error) {
	name, params, hasParam := strings.Cut(s, ":")
	param := 0
	if hasParam {
		v, err := strconv.Atoi(params)
		if err != nil {
			return Topology{}, fmt.Errorf("model: topology %q: bad parameter %q", s, params)
		}
		param = v
	}
	switch name {
	case "", "complete":
		if hasParam {
			return Topology{}, fmt.Errorf("model: topology complete takes no parameter")
		}
		return Topology{}, nil
	case "cycle":
		if hasParam {
			return Topology{}, fmt.Errorf("model: topology cycle takes no parameter")
		}
		return Topology{fam: topoCycle}, nil
	case "grid":
		if hasParam {
			return Topology{}, fmt.Errorf("model: topology grid takes no parameter")
		}
		return Topology{fam: topoGrid}, nil
	case "cliques":
		if !hasParam {
			param = defaultCliqueSize
		}
		if param < 2 {
			return Topology{}, fmt.Errorf("model: cliques size must be ≥ 2, got %d", param)
		}
		return Topology{fam: topoCliques, param: param}, nil
	case "regular":
		if !hasParam {
			param = defaultRegularDeg
		}
		if param < 2 {
			return Topology{}, fmt.Errorf("model: regular degree must be ≥ 2 (degree-1 graphs are matchings, never connected), got %d", param)
		}
		return Topology{fam: topoRegular, param: param}, nil
	case "powerlaw":
		if !hasParam {
			param = defaultPowerlawM
		}
		if param < 1 {
			return Topology{}, fmt.Errorf("model: powerlaw attachment count must be ≥ 1, got %d", param)
		}
		return Topology{fam: topoPowerlaw, param: param}, nil
	default:
		return Topology{}, fmt.Errorf("model: unknown topology %q (complete|cycle|grid|cliques[:k]|regular[:d]|powerlaw[:m])", s)
	}
}

// String returns the canonical name — what ParseTopology round-trips and
// what serve.Spec canonicalizes into cache keys.
func (t Topology) String() string {
	switch t.fam {
	case topoComplete:
		return "complete"
	case topoCycle:
		return "cycle"
	case topoGrid:
		return "grid"
	case topoCliques:
		return fmt.Sprintf("cliques:%d", t.param)
	case topoRegular:
		return fmt.Sprintf("regular:%d", t.param)
	case topoPowerlaw:
		return fmt.Sprintf("powerlaw:%d", t.param)
	}
	return fmt.Sprintf("topology(%d)", t.fam)
}

// IsComplete reports whether the topology is the complete graph — the
// paper's setting, served by the pre-existing schedulers byte-identically.
func (t Topology) IsComplete() bool { return t.fam == topoComplete }

// VertexTransitive reports whether every instance of the family is
// vertex-transitive (complete, cycle, grid torus, random d-regular as a
// degree-homogeneous family). Vertex-transitive families admit the counts
// backend's neighborhood-class aggregation: with every vertex equivalent,
// sampling an ordered state pair within the single neighborhood class —
// starter uniform over agents, reactor uniform over the remaining agents
// under a per-step re-randomized (annealed) embedding — coincides in
// distribution with the complete-graph count chain. Ring-of-cliques and
// power-law graphs have vertex classes with distinct neighborhoods and stay
// on the agent-vector backends.
func (t Topology) VertexTransitive() bool {
	switch t.fam {
	case topoComplete, topoCycle, topoGrid, topoRegular:
		return true
	}
	return false
}

// Seeded reports whether Build consumes the seed (randomized families);
// deterministic families build identically for every seed.
func (t Topology) Seeded() bool {
	return t.fam == topoRegular || t.fam == topoPowerlaw
}

// completeBuildCap bounds Build for the complete family: its CSR is O(n²)
// and exists only for small-scale distribution tests — production executions
// of the complete topology never materialize a graph (the facade hands the
// complete case to the dedicated schedulers).
const completeBuildCap = 1 << 12

// Validate checks the family's population-size constraints without building.
func (t Topology) Validate(n int) error {
	if n < 2 {
		return fmt.Errorf("model: topology %s: population size %d < 2", t, n)
	}
	if n > 1<<31-1 {
		return fmt.Errorf("model: topology %s: population size %d exceeds the 32-bit adjacency bound", t, n)
	}
	switch t.fam {
	case topoComplete:
		if n > completeBuildCap {
			return fmt.Errorf("model: building the complete graph's O(n²) adjacency is capped at n = %d (the complete topology is served without a graph)", completeBuildCap)
		}
	case topoGrid:
		if r, _ := gridDims(n); r < 2 {
			return fmt.Errorf("model: topology grid needs a composite population size with a divisor ≥ 2 (got n = %d)", n)
		}
	case topoRegular:
		if t.param >= n {
			return fmt.Errorf("model: regular degree %d must be < population size %d", t.param, n)
		}
		if n*t.param%2 != 0 {
			return fmt.Errorf("model: regular degree %d with odd population %d has no pairing (n·d must be even)", t.param, n)
		}
	case topoPowerlaw:
		if n < t.param+2 {
			return fmt.Errorf("model: powerlaw:%d needs a population of at least %d, got %d", t.param, t.param+2, n)
		}
	}
	return nil
}

// Build instantiates the topology for a population of n agents. Randomized
// families derive their draws from sched.SplitStream(seed,
// topologyStreamIndex), so the graph is deterministic per (topology, n,
// seed) and independent of every execution stream.
func (t Topology) Build(n int, seed int64) (*Graph, error) {
	if err := t.Validate(n); err != nil {
		return nil, err
	}
	var edges []edge
	switch t.fam {
	case topoComplete:
		edges = completeEdges(n)
	case topoCycle:
		edges = cycleEdges(n)
	case topoGrid:
		edges = gridEdges(n)
	case topoCliques:
		edges = cliqueEdges(n, t.param)
	case topoRegular:
		rng := sched.SplitStream(seed, topologyStreamIndex)
		edges = regularEdges(n, t.param, &rng)
	case topoPowerlaw:
		rng := sched.SplitStream(seed, topologyStreamIndex)
		edges = powerlawEdges(n, t.param, &rng)
	}
	return graphFromEdges(t, n, edges), nil
}

// Graph is a built topology instance: an undirected (multi)graph over the
// agent indices 0..n−1 in CSR form. Both directions of every undirected edge
// appear as adjacency slots, so sampling "a uniform directed slot" — pick a
// starter ∝ degree, then a uniform neighbor slot — is exactly the uniform
// ordered adjacent pair the graphical-protocol scheduler needs. Multi-edges
// (which the torus and configuration-model families can produce on
// degenerate dimensions) weight their pair proportionally, consistent with
// the multigraph semantics of the configuration model.
type Graph struct {
	topo Topology
	offs []int64 // CSR offsets, len n+1
	adj  []int32 // neighbor slots, len = 2·(undirected edge count)
	reg  int     // uniform degree when every vertex has it, else −1
}

// edge is one undirected edge during construction.
type edge struct{ u, v int32 }

// graphFromEdges assembles the CSR form from an undirected edge list.
func graphFromEdges(t Topology, n int, edges []edge) *Graph {
	g := &Graph{topo: t, offs: make([]int64, n+1), adj: make([]int32, 2*len(edges))}
	for _, e := range edges {
		g.offs[e.u+1]++
		g.offs[e.v+1]++
	}
	for i := 0; i < n; i++ {
		g.offs[i+1] += g.offs[i]
	}
	cursor := make([]int64, n)
	copy(cursor, g.offs[:n])
	for _, e := range edges {
		g.adj[cursor[e.u]] = e.v
		cursor[e.u]++
		g.adj[cursor[e.v]] = e.u
		cursor[e.v]++
	}
	g.reg = int(g.offs[1] - g.offs[0])
	for i := 1; i < n; i++ {
		if g.offs[i+1]-g.offs[i] != int64(g.reg) {
			g.reg = -1
			break
		}
	}
	return g
}

// Topology returns the family identity the graph was built from.
func (g *Graph) Topology() Topology { return g.topo }

// N returns the number of vertices (the population size).
func (g *Graph) N() int { return len(g.offs) - 1 }

// Edges returns the number of undirected edges (multi-edges counted).
func (g *Graph) Edges() int { return len(g.adj) / 2 }

// Degree returns vertex v's slot count (multi-edges counted).
func (g *Graph) Degree(v int) int { return int(g.offs[v+1] - g.offs[v]) }

// Neighbor returns vertex v's i-th adjacency slot.
func (g *Graph) Neighbor(v, i int) int { return int(g.adj[g.offs[v]+int64(i)]) }

// RegularDegree returns the uniform degree when the instance is regular,
// −1 otherwise.
func (g *Graph) RegularDegree() int { return g.reg }

// Adjacency exposes the raw CSR arrays (offsets len n+1, neighbor slots) for
// the samplers' hot loops. Shared, read-only.
func (g *Graph) Adjacency() ([]int64, []int32) { return g.offs, g.adj }

// completeEdges builds all pairs — O(n²), capped by Validate; see
// completeBuildCap.
func completeEdges(n int) []edge {
	edges := make([]edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, edge{int32(u), int32(v)})
		}
	}
	return edges
}

// cycleEdges builds the ring. n = 2 degenerates to a single edge (a 2-ring's
// two parallel edges would only double-weight the one possible pair).
func cycleEdges(n int) []edge {
	if n == 2 {
		return []edge{{0, 1}}
	}
	edges := make([]edge, n)
	for u := 0; u < n; u++ {
		edges[u] = edge{int32(u), int32((u + 1) % n)}
	}
	return edges
}

// gridDims factors n into torus dimensions r×c with r the largest divisor of
// n at most √n. r < 2 (prime or tiny n) means no grid exists.
func gridDims(n int) (r, c int) {
	r = 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			r = d
		}
	}
	return r, n / r
}

// gridEdges builds the r×c torus in row-major vertex order: every vertex
// links right and down with wraparound. Dimensions of length 2 produce
// parallel edges (the wrap neighbor coincides); the instance stays
// vertex-transitive as a multigraph.
func gridEdges(n int) []edge {
	r, c := gridDims(n)
	edges := make([]edge, 0, 2*n)
	for row := 0; row < r; row++ {
		for col := 0; col < c; col++ {
			u := int32(row*c + col)
			edges = append(edges, edge{u, int32(row*c + (col+1)%c)})
			edges = append(edges, edge{u, int32(((row+1)%r)*c + col)})
		}
	}
	return edges
}

// cliqueEdges builds a ring of bridged cliques: ⌊n/k⌋ cliques of near-equal
// size (the remainder spread one agent at a time over the leading cliques),
// consecutive cliques bridged by one edge between their border vertices, the
// ring closed when there are at least three cliques (two cliques get a
// single bridge, not a parallel pair).
func cliqueEdges(n, k int) []edge {
	c := n / k
	if c < 1 {
		c = 1
	}
	base, rem := n/c, n%c
	var edges []edge
	start := 0
	starts := make([]int, c+1)
	for i := 0; i < c; i++ {
		starts[i] = start
		size := base
		if i < rem {
			size++
		}
		for u := start; u < start+size; u++ {
			for v := u + 1; v < start+size; v++ {
				edges = append(edges, edge{int32(u), int32(v)})
			}
		}
		start += size
	}
	starts[c] = start
	for i := 0; i+1 < c; i++ {
		edges = append(edges, edge{int32(starts[i+1] - 1), int32(starts[i+1])})
	}
	if c > 2 {
		edges = append(edges, edge{int32(n - 1), 0})
	}
	return edges
}

// regularEdges builds a random d-regular multigraph by the configuration
// model (uniform stub pairing), with deterministic self-loop repair and
// degree-preserving rewiring to a connected graph.
func regularEdges(n, d int, rng *sched.Stream) []edge {
	stubs := make([]int32, n*d)
	for i := range stubs {
		stubs[i] = int32(i / d)
	}
	// Fisher–Yates off the topology stream: the pairing is a uniform perfect
	// matching of the stubs, deterministic per (n, d, seed).
	for i := len(stubs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	edges := make([]edge, len(stubs)/2)
	for i := range edges {
		edges[i] = edge{stubs[2*i], stubs[2*i+1]}
	}
	// Self-loop repair: swap the loop's second stub with the first stub of a
	// later (wrapping) pair that keeps both pairs loop-free. Deterministic,
	// and always possible for d < n: vertex u holds d of the n·d stubs, so
	// pairs avoiding u exist.
	for i := range edges {
		if edges[i].u != edges[i].v {
			continue
		}
		u := edges[i].u
		for off := 1; off < len(edges); off++ {
			j := (i + off) % len(edges)
			if edges[j].u != u && edges[j].v != edges[i].v {
				edges[i].v, edges[j].u = edges[j].u, edges[i].v
				break
			}
		}
	}
	return connectEdges(n, edges)
}

// connectEdges rewires a (loop-free) edge list into a connected graph while
// preserving every degree: components beyond the first are chained into it
// by swapping the reactor endpoints of one edge per component —
// (u1,v1),(u2,v2) → (u1,v2),(u2,v1) merges the two components and moves no
// stub between vertices. Configuration-model d-regular graphs are connected
// with high probability for d ≥ 3 anyway; the repair makes it a guarantee
// (d = 2 samples are unions of cycles and genuinely need it).
func connectEdges(n int, edges []edge) []edge {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
		}
	}
	// One representative edge per component, in first-seen order.
	repFor := make(map[int32]int, 4)
	var reps []int
	for i, e := range edges {
		r := find(e.u)
		if _, ok := repFor[r]; !ok {
			repFor[r] = i
			reps = append(reps, i)
		}
	}
	// Chain every further component into the first: the chain edge index
	// stays reps[0], whose reactor endpoint is refreshed by each swap so the
	// next merge still uses an edge inside the merged component.
	for _, j := range reps[1:] {
		i := reps[0]
		edges[i].v, edges[j].v = edges[j].v, edges[i].v
	}
	return edges
}

// powerlawEdges builds a preferential-attachment (Barabási–Albert) graph:
// a clique core on m+1 vertices, then every new vertex attaches m edges to
// distinct existing vertices chosen proportionally to degree (sampling from
// the edge-endpoint list), deterministic per (n, m, seed). Connected by
// construction; minimum degree m.
func powerlawEdges(n, m int, rng *sched.Stream) []edge {
	var edges []edge
	var targets []int32 // every edge endpoint, so a uniform pick is ∝ degree
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			edges = append(edges, edge{int32(u), int32(v)})
			targets = append(targets, int32(u), int32(v))
		}
	}
	chosen := make([]int32, 0, m)
	for v := m + 1; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < m {
			t := targets[rng.Intn(len(targets))]
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			edges = append(edges, edge{int32(v), t})
			targets = append(targets, int32(v), t)
		}
	}
	return edges
}
