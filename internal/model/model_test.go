package model_test

import (
	"errors"
	"testing"

	"popsim/internal/model"
	"popsim/internal/pp"
)

// testTwoWay is a fully instrumented two-way protocol: every hook produces a
// distinct marker so tests can observe exactly which function the model
// applied.
type testTwoWay struct{}

func (testTwoWay) Name() string { return "probe2w" }
func (testTwoWay) Delta(s, r pp.State) (pp.State, pp.State) {
	return pp.Symbol("fs(" + s.Key() + "," + r.Key() + ")"), pp.Symbol("fr(" + s.Key() + "," + r.Key() + ")")
}
func (testTwoWay) OnStarterOmission(s pp.State) pp.State { return pp.Symbol("o(" + s.Key() + ")") }
func (testTwoWay) OnReactorOmission(r pp.State) pp.State { return pp.Symbol("h(" + r.Key() + ")") }

// testOneWay is the one-way analogue.
type testOneWay struct{}

func (testOneWay) Name() string { return "probe1w" }
func (testOneWay) React(s, r pp.State) pp.State {
	return pp.Symbol("f(" + s.Key() + "," + r.Key() + ")")
}
func (testOneWay) Detect(s pp.State) pp.State            { return pp.Symbol("g(" + s.Key() + ")") }
func (testOneWay) OnStarterOmission(s pp.State) pp.State { return pp.Symbol("o(" + s.Key() + ")") }
func (testOneWay) OnReactorOmission(r pp.State) pp.State { return pp.Symbol("h(" + r.Key() + ")") }

func apply(t *testing.T, k model.Kind, p any, om pp.OmissionSide) (string, string) {
	t.Helper()
	s, r, err := model.Apply(k, p, pp.Symbol("a"), pp.Symbol("b"), om)
	if err != nil {
		t.Fatalf("Apply(%v, om=%v): %v", k, om, err)
	}
	return s.Key(), r.Key()
}

// TestTwoWayRelations checks the transition relations of TW, T1, T2, T3
// exactly as defined in Section 2.3 and Figure 1.
func TestTwoWayRelations(t *testing.T) {
	p := testTwoWay{}
	tests := []struct {
		kind   model.Kind
		om     pp.OmissionSide
		ws, wr string
	}{
		{model.TW, pp.OmissionNone, "fs(a,b)", "fr(a,b)"},
		// T3: detection on both sides.
		{model.T3, pp.OmissionNone, "fs(a,b)", "fr(a,b)"},
		{model.T3, pp.OmissionStarter, "o(a)", "fr(a,b)"},
		{model.T3, pp.OmissionReactor, "fs(a,b)", "h(b)"},
		{model.T3, pp.OmissionBoth, "o(a)", "h(b)"},
		// T2: h forced to identity.
		{model.T2, pp.OmissionStarter, "o(a)", "fr(a,b)"},
		{model.T2, pp.OmissionReactor, "fs(a,b)", "b"},
		{model.T2, pp.OmissionBoth, "o(a)", "b"},
		// T1: both forced to identity.
		{model.T1, pp.OmissionStarter, "a", "fr(a,b)"},
		{model.T1, pp.OmissionReactor, "fs(a,b)", "b"},
		{model.T1, pp.OmissionBoth, "a", "b"},
	}
	for _, tc := range tests {
		s, r := apply(t, tc.kind, p, tc.om)
		if s != tc.ws || r != tc.wr {
			t.Errorf("%v om=%v: got (%s,%s), want (%s,%s)", tc.kind, tc.om, s, r, tc.ws, tc.wr)
		}
	}
}

// TestOneWayRelations checks IT, IO, I1, I2, I3, I4 against Figure 1.
func TestOneWayRelations(t *testing.T) {
	p := testOneWay{}
	tests := []struct {
		kind   model.Kind
		om     pp.OmissionSide
		ws, wr string
	}{
		{model.IT, pp.OmissionNone, "g(a)", "f(a,b)"},
		{model.IO, pp.OmissionNone, "a", "f(a,b)"}, // g forced to identity
		{model.I1, pp.OmissionNone, "g(a)", "f(a,b)"},
		{model.I1, pp.OmissionBoth, "g(a)", "b"},
		{model.I2, pp.OmissionBoth, "g(a)", "g(b)"},
		{model.I3, pp.OmissionBoth, "g(a)", "h(b)"},
		{model.I4, pp.OmissionBoth, "o(a)", "g(b)"},
	}
	for _, tc := range tests {
		s, r := apply(t, tc.kind, p, tc.om)
		if s != tc.ws || r != tc.wr {
			t.Errorf("%v om=%v: got (%s,%s), want (%s,%s)", tc.kind, tc.om, s, r, tc.ws, tc.wr)
		}
	}
}

// TestOmissionRejectedInNonOmissiveModels: TW, IT, IO reject omissive
// interactions.
func TestOmissionRejectedInNonOmissiveModels(t *testing.T) {
	for _, k := range []model.Kind{model.TW, model.IT, model.IO} {
		var p any = testTwoWay{}
		if k.OneWay() {
			p = testOneWay{}
		}
		_, _, err := model.Apply(k, p, pp.Symbol("a"), pp.Symbol("b"), pp.OmissionBoth)
		if !errors.Is(err, model.ErrOmissionNotAllowed) {
			t.Errorf("%v: err = %v, want ErrOmissionNotAllowed", k, err)
		}
	}
}

// TestProtocolShapeEnforced: one-way models need OneWay protocols and vice
// versa.
func TestProtocolShapeEnforced(t *testing.T) {
	if _, _, err := model.Apply(model.IO, testTwoWay{}, pp.Symbol("a"), pp.Symbol("b"), pp.OmissionNone); !errors.Is(err, model.ErrProtocolShape) {
		t.Errorf("IO with TwoWay: err = %v, want ErrProtocolShape", err)
	}
	if _, _, err := model.Apply(model.TW, testOneWay{}, pp.Symbol("a"), pp.Symbol("b"), pp.OmissionNone); !errors.Is(err, model.ErrProtocolShape) {
		t.Errorf("TW with OneWay: err = %v, want ErrProtocolShape", err)
	}
}

// TestDetectionWithoutHooks: a protocol without omission hooks falls back to
// the identity even in detecting models.
func TestDetectionWithoutHooks(t *testing.T) {
	bare := pp.Func{ProtocolName: "bare", Transition: func(s, r pp.State) (pp.State, pp.State) {
		return pp.Symbol("S"), pp.Symbol("R")
	}}
	s, r, err := model.Apply(model.T3, bare, pp.Symbol("a"), pp.Symbol("b"), pp.OmissionBoth)
	if err != nil {
		t.Fatal(err)
	}
	if s.Key() != "a" || r.Key() != "b" {
		t.Errorf("got (%s,%s), want identity (a,b)", s.Key(), r.Key())
	}
}

func TestKindPredicates(t *testing.T) {
	tests := []struct {
		k                          model.Kind
		oneWay, omissive, sd, rd   bool
		proximity, reactorProxOnOm bool
	}{
		{model.TW, false, false, false, false, true, false},
		{model.T1, false, true, false, false, true, false},
		{model.T2, false, true, true, false, true, false},
		{model.T3, false, true, true, true, true, false},
		{model.IT, true, false, false, false, true, false},
		{model.IO, true, false, false, false, false, false},
		{model.I1, true, true, false, false, true, false},
		{model.I2, true, true, false, false, true, true},
		{model.I3, true, true, false, true, true, false},
		{model.I4, true, true, true, false, true, true},
	}
	for _, tc := range tests {
		if tc.k.OneWay() != tc.oneWay {
			t.Errorf("%v OneWay = %v", tc.k, tc.k.OneWay())
		}
		if tc.k.Omissive() != tc.omissive {
			t.Errorf("%v Omissive = %v", tc.k, tc.k.Omissive())
		}
		if tc.k.StarterDetectsOmission() != tc.sd {
			t.Errorf("%v StarterDetectsOmission = %v", tc.k, tc.k.StarterDetectsOmission())
		}
		if tc.k.ReactorDetectsOmission() != tc.rd {
			t.Errorf("%v ReactorDetectsOmission = %v", tc.k, tc.k.ReactorDetectsOmission())
		}
		if tc.k.StarterDetectsProximity() != tc.proximity {
			t.Errorf("%v StarterDetectsProximity = %v", tc.k, tc.k.StarterDetectsProximity())
		}
		if tc.k.ReactorDetectsProximityOnOmission() != tc.reactorProxOnOm {
			t.Errorf("%v ReactorDetectsProximityOnOmission = %v", tc.k, tc.k.ReactorDetectsProximityOnOmission())
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range model.Kinds() {
		got, err := model.ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := model.ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) succeeded")
	}
}

// TestHierarchyShape sanity-checks Figure 1: every weaker model reaches TW,
// and the one-way omissive models reach their one-way parents.
func TestHierarchyShape(t *testing.T) {
	reach := model.Reachable(model.TW)
	for _, k := range model.Kinds() {
		if k == model.TW {
			continue
		}
		if !reach[k] {
			t.Errorf("model %v does not reach TW in the Figure-1 hierarchy", k)
		}
	}
	itReach := model.Reachable(model.IT)
	for _, k := range []model.Kind{model.IO, model.I1, model.I2, model.I3, model.I4} {
		if !itReach[k] {
			t.Errorf("model %v does not reach IT", k)
		}
	}
	if itReach[model.TW] || itReach[model.T3] {
		t.Error("two-way models must not be included in IT's class")
	}
	for _, e := range model.Hierarchy() {
		if e.From == e.To {
			t.Errorf("self-edge %v", e)
		}
		if e.Note == "" {
			t.Errorf("edge %v→%v lacks a justification note", e.From, e.To)
		}
	}
}
