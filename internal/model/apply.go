package model

import (
	"errors"
	"fmt"

	"popsim/internal/pp"
)

// Errors returned by Apply.
var (
	// ErrOmissionNotAllowed is returned when an omissive interaction is
	// applied under a non-omissive model (TW, IT, IO).
	ErrOmissionNotAllowed = errors.New("model: omissive interaction in a non-omissive model")
	// ErrProtocolShape is returned when the protocol does not implement
	// the interface required by the model (TwoWay vs OneWay).
	ErrProtocolShape = errors.New("model: protocol does not match model shape")
)

// starterOmission applies o if the protocol implements detection and the
// model allows it; otherwise the identity.
func starterOmission(k Kind, p any, s pp.State) pp.State {
	if !k.StarterDetectsOmission() {
		return s
	}
	if d, ok := p.(pp.StarterOmissionAware); ok {
		return d.OnStarterOmission(s)
	}
	return s
}

// reactorOmission applies h if the protocol implements detection and the
// model allows it; otherwise the identity.
func reactorOmission(k Kind, p any, r pp.State) pp.State {
	if !k.ReactorDetectsOmission() {
		return r
	}
	if d, ok := p.(pp.ReactorOmissionAware); ok {
		return d.OnReactorOmission(r)
	}
	return r
}

// detect applies g if the model grants proximity detection to the starter.
func detect(k Kind, p pp.OneWay, s pp.State) pp.State {
	if !k.StarterDetectsProximity() {
		return s
	}
	return p.Detect(s)
}

// Apply executes one interaction of protocol p under model k.
//
// The protocol must be a pp.TwoWay for the two-way models (TW, T1, T2, T3)
// and a pp.OneWay for the one-way models (IT, IO, I1–I4); omission-detection
// hooks are picked up via the optional pp.StarterOmissionAware and
// pp.ReactorOmissionAware interfaces, and are forced to the identity whenever
// the model withholds the capability.
//
// Apply returns the new (starter, reactor) states. It never mutates the
// inputs.
func Apply(k Kind, p any, starter, reactor pp.State, om pp.OmissionSide) (pp.State, pp.State, error) {
	if om.IsOmissive() && !k.Omissive() {
		return nil, nil, fmt.Errorf("%w: %v under %v", ErrOmissionNotAllowed, om, k)
	}
	if k.OneWay() {
		ow, ok := p.(pp.OneWay)
		if !ok {
			return nil, nil, fmt.Errorf("%w: %v requires pp.OneWay", ErrProtocolShape, k)
		}
		return applyOneWay(k, ow, starter, reactor, om)
	}
	tw, ok := p.(pp.TwoWay)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %v requires pp.TwoWay", ErrProtocolShape, k)
	}
	return applyTwoWay(k, tw, starter, reactor, om)
}

// applyTwoWay implements the transition relations of TW, T1, T2, T3:
//
//	no omission:       (fs(as,ar), fr(as,ar))
//	starter omission:  (o(as),     fr(as,ar))
//	reactor omission:  (fs(as,ar), h(ar))
//	both:              (o(as),     h(ar))
//
// with o (resp. h) forced to the identity when the model withholds
// starter-side (resp. reactor-side) detection.
func applyTwoWay(k Kind, p pp.TwoWay, s, r pp.State, om pp.OmissionSide) (pp.State, pp.State, error) {
	var ns, nr pp.State
	switch {
	case !om.StarterOmitted() && !om.ReactorOmitted():
		ns, nr = p.Delta(s, r)
	case om.StarterOmitted() && !om.ReactorOmitted():
		_, fr := p.Delta(s, r)
		ns, nr = starterOmission(k, p, s), fr
	case !om.StarterOmitted() && om.ReactorOmitted():
		fs, _ := p.Delta(s, r)
		ns, nr = fs, reactorOmission(k, p, r)
	default: // both
		ns, nr = starterOmission(k, p, s), reactorOmission(k, p, r)
	}
	return ns, nr, nil
}

// applyOneWay implements the transition relations of IT, IO, I1, I2, I3, I4:
//
//	no omission:  (g(as), f(as, ar))       (g = id in IO)
//	omission:     I1: (g(as), ar)
//	              I2: (g(as), g(ar))
//	              I3: (g(as), h(ar))
//	              I4: (o(as), g(ar))
//
// In one-way models there is a single transmission (starter → reactor), so
// any omissive interaction means that transmission was lost; the
// pp.OmissionSide granularity of the two-way models collapses to a boolean.
func applyOneWay(k Kind, p pp.OneWay, s, r pp.State, om pp.OmissionSide) (pp.State, pp.State, error) {
	if !om.IsOmissive() {
		return detect(k, p, s), p.React(s, r), nil
	}
	switch k {
	case I1:
		return p.Detect(s), r, nil
	case I2:
		return p.Detect(s), p.Detect(r), nil
	case I3:
		return p.Detect(s), reactorOmission(k, p, r), nil
	case I4:
		return starterOmission(k, p, s), p.Detect(r), nil
	default:
		return nil, nil, fmt.Errorf("%w: %v with omission %v", ErrOmissionNotAllowed, k, om)
	}
}
