package model

import (
	"fmt"

	"popsim/internal/pp"
)

// Transition-cache entry encoding: a cached transition packs both interned
// result IDs and a caller-defined auxiliary byte into one uint64, so the
// engine's hot loop reads a single machine word per interaction:
//
//	bits 63..36  starter result ID (28 bits)
//	bits 35..8   reactor result ID (28 bits)
//	bits  7..0   aux byte; bit 7 is the presence marker, bits 6..0 are
//	             available to the AuxFunc
//
// A packed entry is never zero (the presence bit is always set), so zero
// doubles as the empty marker in the dense table.
const (
	entryIDBits         = 28
	entryIDMask         = 1<<entryIDBits - 1
	entryAuxMask uint8  = 1<<7 - 1
	entryPresent uint64 = 1 << 7
)

// EntryStarter extracts the starter's interned result ID from a packed
// transition entry. (The shift leaves exactly the 28 ID bits — no mask.)
func EntryStarter(e uint64) uint32 { return uint32(e >> 36) }

// EntryReactor extracts the reactor's interned result ID.
func EntryReactor(e uint64) uint32 { return uint32(e>>8) & entryIDMask }

// EntryAux extracts the auxiliary byte computed by the cache's AuxFunc.
func EntryAux(e uint64) uint8 { return uint8(e) & entryAuxMask }

// EntryLean reports whether e is a present entry with a zero aux byte — the
// fully-cached, no-side-effect case batch loops stay on. Its negation covers
// both "absent" and "aux set" in one compare.
func EntryLean(e uint64) bool { return uint8(e) == uint8(entryPresent) }

func packEntry(ns, nr uint32, aux uint8) uint64 {
	return uint64(ns)<<36 | uint64(nr)<<8 | uint64(aux&entryAuxMask) | entryPresent
}

// AuxFunc computes a small per-transition annotation (≤ 7 bits) from the
// four states of a cached transition, memoized alongside the result IDs.
// The engine uses it to precompute whether a transition emits simulation
// events, so the hot loop never inspects states.
type AuxFunc func(s, r, ns, nr pp.State) uint8

// PayloadFunc computes an optional per-transition side payload from the four
// states of a cached transition, memoized alongside the packed entry. It is
// the wide companion of AuxFunc: the aux byte tells hot loops *that* a
// transition has side content (in one branchable byte), the payload carries
// *what* it is — e.g. the simulation events a wrapped-simulator transition
// emits, which are behavioral (identical for every provenance variant of a
// canonical state pair) and therefore safe to memoize per ID pair. A nil
// return stores nothing.
type PayloadFunc func(s, r, ns, nr pp.State) any

// TransitionCache memoizes the transition relation of one (model, protocol)
// pair over interned state IDs: δ is evaluated at most once per distinct
// (starter, reactor, omission) triple instead of once per interaction.
//
// Non-omissive transitions — the overwhelmingly common case under benign
// schedules — live in a dense stride×stride table indexed by the ID pair;
// omissive transitions and any traffic beyond the dense capacity live in an
// overflow map. The cache stays correct for unbounded state spaces (entries
// just stop fitting the dense table); callers that need the dense fast path
// to stay profitable should watch Interner.Len and fall back to direct Apply
// when the space keeps growing. Not safe for concurrent use.
type TransitionCache struct {
	kind     Kind
	protocol any
	in       *pp.Interner
	aux      AuxFunc
	payload  PayloadFunc

	stride    uint32
	dense     []uint64
	maxStride uint32
	overflow  map[uint64]uint64
	payloads  map[uint64]any
}

// DefaultMaxStride bounds the dense table: state spaces wider than this keep
// working through the overflow map, at map-lookup speed.
const DefaultMaxStride = 1024

// NewTransitionCache builds a cache for protocol p under model k, interning
// states through in. aux may be nil.
func NewTransitionCache(k Kind, p any, in *pp.Interner, aux AuxFunc) *TransitionCache {
	return &TransitionCache{
		kind:      k,
		protocol:  p,
		in:        in,
		aux:       aux,
		maxStride: DefaultMaxStride,
		overflow:  make(map[uint64]uint64),
	}
}

// SetMaxStride bounds the dense table at n×n entries (n is rounded up to a
// power of two and clamped to [16, DefaultMaxStride]). Call before first use;
// entries beyond the bound live in the overflow map.
func (c *TransitionCache) SetMaxStride(n uint32) {
	m := uint32(16)
	for m < n && m < DefaultMaxStride {
		m *= 2
	}
	c.maxStride = m
}

// MaxStride returns the configured dense-table bound (the effective value
// after SetMaxStride's rounding and clamping).
func (c *TransitionCache) MaxStride() uint32 { return c.maxStride }

// SetPayloadFunc installs the per-transition payload channel (see
// PayloadFunc). Call before first use; transitions evaluated earlier carry
// no payload.
func (c *TransitionCache) SetPayloadFunc(f PayloadFunc) { c.payload = f }

// Payload returns the memoized side payload of the cached transition
// (sID, rID, om), if the payload function produced one when the transition
// was first evaluated.
func (c *TransitionCache) Payload(sID, rID uint32, om pp.OmissionSide) (any, bool) {
	v, ok := c.payloads[omKey(sID, rID, om)]
	return v, ok
}

// Interner returns the cache's interner.
func (c *TransitionCache) Interner() *pp.Interner { return c.in }

// Dense exposes the non-omissive dense table and its stride for direct
// indexing by hot loops: for sID, rID < stride, the packed entry (zero if
// absent) is table[sID*stride+rID]. The stride is always a power of two, so
// the index is equivalently sID<<log2(stride) | rID. The slice is
// invalidated by any Apply call that grows the table; re-fetch after misses.
func (c *TransitionCache) Dense() ([]uint64, uint32) { return c.dense, c.stride }

// Lookup returns the cached non-omissive transition entry for (sID, rID),
// if present.
func (c *TransitionCache) Lookup(sID, rID uint32) (uint64, bool) {
	if sID < c.stride && rID < c.stride {
		e := c.dense[uint64(sID)*uint64(c.stride)+uint64(rID)]
		return e, e != 0
	}
	e, ok := c.overflow[omKey(sID, rID, pp.OmissionNone)]
	return e, ok
}

// omKey packs a cache key for the overflow map. IDs are 28 bits by the entry
// encoding, so the packed key is collision-free.
func omKey(sID, rID uint32, om pp.OmissionSide) uint64 {
	return uint64(sID)<<36 | uint64(rID)<<8 | uint64(om)
}

// Apply returns the packed transition entry for (sID, rID, om), evaluating
// the model's transition relation and memoizing it on first sight. Errors
// from the underlying Apply (e.g. an omissive interaction under a
// non-omissive model) are returned verbatim and never cached.
func (c *TransitionCache) Apply(sID, rID uint32, om pp.OmissionSide) (uint64, error) {
	if om == pp.OmissionNone {
		if e, ok := c.Lookup(sID, rID); ok {
			return e, nil
		}
	} else if e, ok := c.overflow[omKey(sID, rID, om)]; ok {
		return e, nil
	}
	s, r := c.in.State(sID), c.in.State(rID)
	ns, nr, err := Apply(c.kind, c.protocol, s, r, om)
	if err != nil {
		return 0, err
	}
	nsID, nrID := c.in.Intern(ns), c.in.Intern(nr)
	var aux uint8
	if c.aux != nil {
		aux = c.aux(s, r, ns, nr)
	}
	if c.payload != nil {
		if v := c.payload(s, r, ns, nr); v != nil {
			if c.payloads == nil {
				c.payloads = make(map[uint64]any)
			}
			c.payloads[omKey(sID, rID, om)] = v
		}
	}
	if nsID > entryIDMask || nrID > entryIDMask {
		// Beyond the packable 28-bit ID range the entry encoding cannot
		// represent the result. 2^28 distinct states exceed any workload
		// the dense path is meant for — callers monitoring Interner.Len
		// bail far earlier — so fail loudly rather than pack a corrupt
		// entry.
		return 0, fmt.Errorf("model: transition cache overflow: %d interned states exceed the %d-bit ID range", c.in.Len(), entryIDBits)
	}
	e := packEntry(nsID, nrID, aux)
	c.store(sID, rID, om, e)
	return e, nil
}

// store files a computed entry, growing the dense table as the interner
// grows (up to maxStride; beyond that the overflow map takes over).
func (c *TransitionCache) store(sID, rID uint32, om pp.OmissionSide, e uint64) {
	if om != pp.OmissionNone {
		c.overflow[omKey(sID, rID, om)] = e
		return
	}
	if sID >= c.stride || rID >= c.stride {
		c.growDense()
	}
	if sID < c.stride && rID < c.stride {
		c.dense[uint64(sID)*uint64(c.stride)+uint64(rID)] = e
		return
	}
	c.overflow[omKey(sID, rID, pp.OmissionNone)] = e
}

// growDense resizes the dense table to cover every ID interned so far,
// re-indexing existing entries.
func (c *TransitionCache) growDense() {
	need := uint32(c.in.Len())
	if need <= c.stride || c.stride >= c.maxStride {
		return
	}
	stride := c.stride
	if stride == 0 {
		stride = 16
	}
	for stride < need {
		stride *= 2
	}
	if stride > c.maxStride {
		stride = c.maxStride
	}
	if stride <= c.stride {
		return
	}
	dense := make([]uint64, uint64(stride)*uint64(stride))
	for s := uint32(0); s < c.stride; s++ {
		old := c.dense[uint64(s)*uint64(c.stride) : uint64(s+1)*uint64(c.stride)]
		copy(dense[uint64(s)*uint64(stride):], old)
	}
	c.dense, c.stride = dense, stride
}
