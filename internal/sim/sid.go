package sim

import (
	"strconv"
	"strings"

	"popsim/internal/pp"
	"popsim/internal/verify"
)

// SIDMode is the simulator-protocol state of a SID agent (Figure 3 of the
// paper).
type SIDMode int

// SID modes.
const (
	// SIDAvailable: not committed to any simulated interaction.
	SIDAvailable SIDMode = iota + 1
	// SIDPairing: soft commitment — the agent picked a specific partner
	// (idother/stateother) for the next simulated interaction.
	SIDPairing
	// SIDLocked: hard commitment — the agent has already applied its half
	// of δP and waits for its partner to observe it and complete.
	SIDLocked
)

// String implements fmt.Stringer.
func (m SIDMode) String() string {
	switch m {
	case SIDAvailable:
		return "available"
	case SIDPairing:
		return "pairing"
	case SIDLocked:
		return "locked"
	default:
		return "sidmode?"
	}
}

// SID is the ID-locking simulator of Section 4.2 (Figure 3, Theorem 4.5):
// it simulates an arbitrary two-way protocol P in the Immediate Observation
// model, assuming agents carry unique IDs. A reactor that observes an
// available starter enters the pairing state, committing to that specific
// ID; when the committed-to agent observes the commitment it locks, applying
// δP(own, partner)[0]; when the pairing agent observes the lock it applies
// δP(partner, own)[1] and both eventually return to available. A rollback
// rule (Figure 3 lines 14–16) releases stale commitments.
//
// Erratum note (documented in DESIGN.md): Figure 3 line 13 applies
// δP(state^s_P, stateP)[1] with the *already-updated* state of the locked
// partner; we use the pairing agent's saved stateother — the partner's state
// at pairing time — which is what the proof of Theorem 4.5 argues about.
type SID struct {
	// P is the simulated two-way protocol.
	P pp.TwoWay
	// DisableRollback switches off the stale-commitment release of
	// Figure 3 lines 14–16. Ablation-only: without it, a cycle of
	// pairing commitments deadlocks the simulator (see
	// TestSIDRollbackAblation), which is exactly why the paper includes
	// the rule.
	DisableRollback bool
}

var _ pp.OneWay = SID{}

// Name implements pp.OneWay.
func (s SID) Name() string { return "sid/" + s.P.Name() }

// Wrap builds the initial wrapped state of an agent with the given unique ID
// (ids must be ≥ 1; 0 encodes ⊥) and initial simulated state.
func (s SID) Wrap(sim pp.State, id int) *SIDState {
	return &SIDState{id: id, sim: sim, mode: SIDAvailable}
}

// WrapConfig wraps a simulated initial configuration, assigning IDs 1..n in
// order.
func (s SID) WrapConfig(simCfg pp.Configuration) pp.Configuration {
	out := make(pp.Configuration, len(simCfg))
	for i, st := range simCfg {
		out[i] = s.Wrap(st, i+1)
	}
	return out
}

// SIDState is the wrapped state of one SID agent: the simulated state plus
// the variables of Figure 3 (my_id, statesim, idother, stateother).
type SIDState struct {
	id       int
	sim      pp.State
	mode     SIDMode
	otherID  int      // idother; 0 = ⊥
	otherSim pp.State // stateother; nil = ⊥

	// Verification-only instrumentation: never read by transitions and
	// excluded from the canonical Key (see Key). lockTag labels the
	// current lock session so direct API users can pair the two halves of
	// a simulated interaction; interned runs recover provenance from the
	// run-level recorder instead.
	lockTag   string
	gen       uint64
	lastEvent verify.Event

	// key memoizes the canonical Key (cleared on clone).
	key string
}

var (
	_ Wrapped     = (*SIDState)(nil)
	_ MemoryBytes = (*SIDState)(nil)
)

// Simulated implements Wrapped.
func (a *SIDState) Simulated() pp.State { return a.sim }

// EventSeq implements Wrapped.
func (a *SIDState) EventSeq() uint64 { return a.gen }

// LastEvent implements Wrapped.
func (a *SIDState) LastEvent() verify.Event { return a.lastEvent }

// ID returns the agent's unique ID.
func (a *SIDState) ID() int { return a.id }

// Mode returns the simulator-protocol state.
func (a *SIDState) Mode() SIDMode { return a.mode }

// PartnerID returns idother (0 = ⊥).
func (a *SIDState) PartnerID() int { return a.otherID }

// Key implements pp.State. The encoding is canonical-behavioral: it covers
// exactly the Figure-3 variables the transition logic reads — my_id,
// simulated state, mode, idother, stateother — and excludes the
// instrumentation (lockTag, gen, event cache), so states that differ only in
// provenance intern to the same dense ID. The ID stays in the key because it
// IS behavioral: SID's pairing/locking conditions branch on it, which is why
// the SID state space scales with n even under canonical keys. Memoized on
// first call; memoization is unsynchronized: first calls must not race
// (executions are single-goroutine; share states across goroutines only
// after keying them).
func (a *SIDState) Key() string {
	if a.key == "" {
		a.key = a.buildKey()
	}
	return a.key
}

// CanonicalKey implements CanonicalKeyed: Key is purely behavioral.
func (a *SIDState) CanonicalKey() {}

func (a *SIDState) buildKey() string {
	var b strings.Builder
	size := 32 + len(a.sim.Key())
	if a.otherSim != nil {
		size += len(a.otherSim.Key())
	}
	b.Grow(size)
	b.WriteString("sid{")
	b.WriteString(strconv.Itoa(a.id))
	b.WriteByte(';')
	b.WriteString(a.sim.Key())
	b.WriteByte(';')
	b.WriteString(a.mode.String())
	b.WriteByte(';')
	b.WriteString(strconv.Itoa(a.otherID))
	b.WriteByte(';')
	if a.otherSim != nil {
		b.WriteString(a.otherSim.Key())
	}
	b.WriteByte('}')
	return b.String()
}

// MemoryBytes implements MemoryBytes: two IDs of Θ(log n) bits plus one
// saved simulated state and the mode.
func (a *SIDState) MemoryBytes() int {
	total := 1 + bitsLen(a.id)/8 + 1 + bitsLen(a.otherID)/8 + 1
	if a.otherSim != nil {
		total += len(a.otherSim.Key())
	}
	return total
}

// bitsLen returns the bit length of a non-negative int, at least 1.
func bitsLen(v int) int {
	n := 1
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// clone returns a copy ready for mutation.
func (a *SIDState) clone() *SIDState {
	cp := *a
	cp.key = "" // the clone is about to be mutated
	return &cp
}

// reset clears the pairing/locking variables (lines 11–12, 15–16).
func (a *SIDState) reset() {
	a.mode = SIDAvailable
	a.otherID = 0
	a.otherSim = nil
	a.lockTag = ""
}

// Detect implements pp.OneWay. SID targets the Immediate Observation model:
// the starter is unaware of the interaction, so g is the identity (the model
// layer would enforce this anyway).
func (s SID) Detect(starter pp.State) pp.State { return starter }

// React implements pp.OneWay: the reactor observes the starter's full state
// and follows Figure 3.
func (s SID) React(starter, reactor pp.State) pp.State {
	sa, ok1 := starter.(*SIDState)
	ra, ok2 := reactor.(*SIDState)
	if !ok1 || !ok2 {
		return reactor
	}
	r := ra.clone()
	switch {
	// Lines 3–5: both available — soft-commit to this starter.
	case r.mode == SIDAvailable && sa.mode == SIDAvailable:
		r.mode = SIDPairing
		r.otherID = sa.id
		r.otherSim = sa.sim

	// Lines 6–9: the starter is pairing with me (and remembers my current
	// simulated state): lock and apply my half, δP(mine, theirs)[0].
	case r.mode == SIDAvailable && sa.mode == SIDPairing &&
		sa.otherID == r.id && pp.Equal(sa.otherSim, r.sim):
		r.mode = SIDLocked
		r.otherID = sa.id
		r.otherSim = sa.sim
		pre := r.sim
		post, _ := s.P.Delta(pre, sa.sim)
		r.gen++
		r.sim = post
		r.lockTag = strconv.Itoa(r.id) + "." + strconv.FormatUint(r.gen, 10)
		r.lastEvent = verify.Event{
			Seq:        r.gen,
			Role:       verify.SimStarter,
			Pre:        pre,
			Post:       post,
			PartnerPre: sa.sim,
			Tag:        r.lockTag,
		}

	// Lines 10–13: my chosen partner locked on me — complete with
	// δP(theirs-at-pairing-time, mine)[1] and release.
	case r.mode == SIDPairing && r.otherID == sa.id &&
		sa.otherID == r.id && sa.mode == SIDLocked:
		pre := r.sim
		partnerPre := r.otherSim // erratum fix; see type comment
		_, post := s.P.Delta(partnerPre, pre)
		r.gen++
		r.sim = post
		r.lastEvent = verify.Event{
			Seq:        r.gen,
			Role:       verify.SimReactor,
			Pre:        pre,
			Post:       post,
			PartnerPre: partnerPre,
			Tag:        sa.lockTag,
		}
		r.reset()

	// Lines 14–16: my chosen partner no longer points at me — roll back.
	// For a locked agent this fires only after the partner completed (the
	// proof of Theorem 4.5), so the simulated half-step is never lost.
	case r.otherID != 0 && r.otherID == sa.id && sa.otherID != r.id:
		if s.DisableRollback {
			break
		}
		r.reset()
	}
	return r
}
