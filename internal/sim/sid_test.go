package sim_test

import (
	"fmt"
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
	"popsim/internal/verify"
)

// runSID drives the SID simulator in the IO model.
func runSID(t *testing.T, p pp.TwoWay, simCfg pp.Configuration, seed int64, steps int) (*engine.Engine, *trace.Recorder) {
	t.Helper()
	s := sim.SID{P: p}
	rec := &trace.Recorder{}
	eng, err := engine.New(model.IO, s, s.WrapConfig(simCfg), sched.NewRandom(seed),
		engine.WithRecorder(rec))
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	if err := eng.RunSteps(steps); err != nil {
		t.Fatalf("RunSteps: %v", err)
	}
	return eng, rec
}

func verifySim(t *testing.T, p pp.TwoWay, simCfg pp.Configuration, rec *trace.Recorder) *verify.Report {
	t.Helper()
	rep := verify.Verify(rec.Events(), simCfg, p.Delta)
	if err := rep.Err(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	strict := verify.VerifyStrict(rec.Events(), simCfg, p.Delta)
	if err := strict.Err(); err != nil {
		t.Fatalf("strict verification failed: %v", err)
	}
	if err := verify.Replay(strict, rec.Events(), simCfg, p.Delta); err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if got, limit := rep.Unmatched(), len(simCfg); got > limit {
		t.Errorf("unmatched events = %d, want ≤ n = %d", got, limit)
	}
	return rep
}

func TestSIDPairingTwoAgents(t *testing.T) {
	simCfg := protocols.PairingConfig(1, 1)
	eng, rec := runSID(t, protocols.Pairing{}, simCfg, 1, 2000)
	proj := sim.Project(eng.Config())
	if !protocols.PairingDone(proj, 1, 1) {
		t.Fatalf("pairing not completed: %v", proj)
	}
	rep := verifySim(t, protocols.Pairing{}, simCfg, rec)
	if len(rep.Pairs) == 0 {
		t.Fatal("no simulated interactions matched")
	}
}

func TestSIDPairingMany(t *testing.T) {
	for _, tc := range []struct{ c, p int }{{3, 2}, {2, 3}, {4, 4}} {
		tc := tc
		t.Run(fmt.Sprintf("c=%d_p=%d", tc.c, tc.p), func(t *testing.T) {
			simCfg := protocols.PairingConfig(tc.c, tc.p)
			eng, rec := runSID(t, protocols.Pairing{}, simCfg, int64(tc.c*10+tc.p), 60000)
			proj := sim.Project(eng.Config())
			if !protocols.PairingSafe(proj, tc.p) {
				t.Fatalf("SAFETY violated: served=%d producers=%d", proj.Count(protocols.Served), tc.p)
			}
			if !protocols.PairingDone(proj, tc.c, tc.p) {
				t.Fatalf("liveness: served=%d want %d", proj.Count(protocols.Served), min(tc.c, tc.p))
			}
			verifySim(t, protocols.Pairing{}, simCfg, rec)
		})
	}
}

func TestSIDMajority(t *testing.T) {
	simCfg := protocols.MajorityConfig(5, 3)
	eng, rec := runSID(t, protocols.Majority{}, simCfg, 17, 120000)
	proj := sim.Project(eng.Config())
	if !protocols.MajorityInvariant(proj, 5, 3) {
		t.Fatalf("majority invariant broken: %v", proj)
	}
	if !protocols.MajorityConverged(proj, "A") {
		t.Fatalf("majority did not converge to A: %v", proj)
	}
	verifySim(t, protocols.Majority{}, simCfg, rec)
}

func TestSIDLeaderElection(t *testing.T) {
	simCfg := protocols.LeaderConfig(6)
	eng, rec := runSID(t, protocols.LeaderElection{}, simCfg, 23, 120000)
	proj := sim.Project(eng.Config())
	if !protocols.LeaderSafe(proj) {
		t.Fatal("leader count dropped to zero")
	}
	if !protocols.LeaderElected(proj) {
		t.Fatalf("leaders remaining: %d, want 1", proj.Count(protocols.Leader))
	}
	verifySim(t, protocols.LeaderElection{}, simCfg, rec)
}

// TestSIDLockedNeverLosesHalfStep: a locked agent has already applied its
// δ[0] half; the rollback rule must only release it after its partner
// completed. We check a strong consequence on the final configuration of
// every run: the number of SimStarter events equals the number of SimReactor
// events up to the (≤ n) in-flight tail, and verification matches them all.
func TestSIDHalfStepAccounting(t *testing.T) {
	simCfg := protocols.MajorityConfig(3, 3)
	_, rec := runSID(t, protocols.Majority{}, simCfg, 5, 40000)
	starters, reactors := 0, 0
	for _, e := range rec.Events() {
		switch e.Role {
		case verify.SimStarter:
			starters++
		case verify.SimReactor:
			reactors++
		}
	}
	if diff := starters - reactors; diff < 0 || diff > len(simCfg) {
		t.Fatalf("starter/reactor event imbalance: %d vs %d", starters, reactors)
	}
	verifySim(t, protocols.Majority{}, simCfg, rec)
}

// TestSIDDeterministicReplay: same seed ⇒ identical execution.
func TestSIDDeterministicReplay(t *testing.T) {
	run := func() string {
		simCfg := protocols.PairingConfig(2, 2)
		eng, _ := runSID(t, protocols.Pairing{}, simCfg, 77, 5000)
		return eng.Config().Key()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different executions:\n%s\n%s", a, b)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
