package sim_test

import (
	"testing"

	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sim"
)

func TestTokenKeys(t *testing.T) {
	ann := sim.Token{Kind: sim.AnnounceToken, Q: protocols.Consumer, Idx: 2}
	chg := sim.Token{Kind: sim.ChangeToken, Q: protocols.Consumer, Via: protocols.Producer, Idx: 1, Tag: "3.7"}
	jok := sim.Token{Kind: sim.JokerToken}
	if ann.Key() != "A:c:2" {
		t.Errorf("announce key = %q", ann.Key())
	}
	if chg.Key() != "C:c>p:1" {
		t.Errorf("change key = %q", chg.Key())
	}
	if jok.Key() != "J" {
		t.Errorf("joker key = %q", jok.Key())
	}
}

// TestTokenKeysIgnoreTag: both the Rummy debt bookkeeping (SlotKey) and the
// canonical encoding (Key) treat change tokens of equal (q, q', i) as
// interchangeable, regardless of provenance tags — tokens carry no
// provenance in the paper, and the interned fast paths rely on
// behaviorally equal tokens sharing one key.
func TestTokenKeysIgnoreTag(t *testing.T) {
	a := sim.Token{Kind: sim.ChangeToken, Q: protocols.Consumer, Via: protocols.Producer, Idx: 1, Tag: "1.1"}
	b := sim.Token{Kind: sim.ChangeToken, Q: protocols.Consumer, Via: protocols.Producer, Idx: 1, Tag: "9.9"}
	if a.SlotKey() != b.SlotKey() {
		t.Errorf("slot keys differ: %q vs %q", a.SlotKey(), b.SlotKey())
	}
	if a.Key() != b.Key() {
		t.Errorf("canonical keys must ignore the tag: %q vs %q", a.Key(), b.Key())
	}
}

func TestTokenKindString(t *testing.T) {
	for kind, want := range map[sim.TokenKind]string{
		sim.AnnounceToken: "announce",
		sim.ChangeToken:   "change",
		sim.JokerToken:    "joker",
	} {
		if kind.String() != want {
			t.Errorf("%d: %q", kind, kind.String())
		}
	}
}

// TestSKnOAnnounceOnFirstTransmission: an available agent with an empty
// queue announces when acting as a starter and transmits the first token.
func TestSKnOAnnounceOnFirstTransmission(t *testing.T) {
	s := sim.SKnO{P: protocols.Pairing{}, O: 2}
	a := s.Wrap(protocols.Producer, 0)
	post, ok := s.Detect(a).(*sim.SKnOState)
	if !ok {
		t.Fatal("Detect changed state type")
	}
	if post.Mode() != sim.Pending {
		t.Fatalf("mode = %v, want pending", post.Mode())
	}
	q := post.Queue()
	if len(q) != 2 { // o+1 = 3 announced, head transmitted
		t.Fatalf("queue length = %d, want 2", len(q))
	}
	if q[0].Kind != sim.AnnounceToken || q[0].Idx != 2 {
		t.Fatalf("head after pop = %v", q[0])
	}
	// The original state is untouched (immutability).
	if a.Mode() != sim.Available || len(a.Queue()) != 0 {
		t.Fatal("Detect mutated its input")
	}
}

// TestSKnOReactorAssemblesRun: feeding o+1 announce tokens makes an
// available reactor consume the run and apply δ[1].
func TestSKnOReactorAssemblesRun(t *testing.T) {
	o := 1
	s := sim.SKnO{P: protocols.Pairing{}, O: o}
	producer := s.Wrap(protocols.Producer, 0)
	consumer := pp.State(s.Wrap(protocols.Consumer, 1))
	var st pp.State = producer
	for i := 0; i <= o; i++ {
		// Reactor reads the head of the starter's (pre) queue.
		consumer = s.React(st, consumer)
		st = s.Detect(st)
	}
	got := consumer.(*sim.SKnOState)
	if !pp.Equal(got.Simulated(), protocols.Served) {
		t.Fatalf("consumer simulated state = %v, want cs", got.Simulated())
	}
	// The change run ⟨(p, c), 1..o+1⟩ must now sit in its queue.
	change := 0
	for _, tok := range got.Queue() {
		if tok.Kind == sim.ChangeToken {
			change++
			if !pp.Equal(tok.Q, protocols.Producer) || !pp.Equal(tok.Via, protocols.Consumer) {
				t.Fatalf("change token content %v", tok)
			}
		}
	}
	if change != o+1 {
		t.Fatalf("change tokens = %d, want %d", change, o+1)
	}
	if got.EventSeq() != 1 {
		t.Fatalf("event seq = %d, want 1", got.EventSeq())
	}
}

// TestSKnORummyRule: receiving a token whose slot is in the debt multiset
// converts it back into a joker and repays the debt.
func TestSKnORummyRule(t *testing.T) {
	o := 1
	s := sim.SKnO{P: protocols.Pairing{}, O: o}
	// Build a consumer holding ⟨p,1⟩ plus a joker; consuming the run for p
	// uses the joker for slot ⟨p,2⟩ and records the debt.
	consumer := pp.State(s.Wrap(protocols.Consumer, 1))
	producer := s.Wrap(protocols.Producer, 0)
	consumer = s.React(producer, consumer)   // receives ⟨p,1⟩; incomplete
	consumer = s.OnReactorOmission(consumer) // joker arrives; run completes via wildcard
	got := consumer.(*sim.SKnOState)
	if !pp.Equal(got.Simulated(), protocols.Served) {
		t.Fatalf("wildcard consumption failed: %v", got.Simulated())
	}
	if got.DebtSize() != 1 {
		t.Fatalf("debt = %d, want 1", got.DebtSize())
	}
	// Now the "late" ⟨p,2⟩ arrives: it must be converted into a joker.
	late := s.Wrap(protocols.Producer, 2)
	lateAfter := s.Detect(late).(*sim.SKnOState) // producer announces, pops ⟨p,1⟩
	consumer = s.React(lateAfter, consumer)      // transmits ⟨p,2⟩
	got = consumer.(*sim.SKnOState)
	if got.DebtSize() != 0 {
		t.Fatalf("debt not repaid: %d", got.DebtSize())
	}
	jokers := 0
	for _, tok := range got.Queue() {
		if tok.Kind == sim.JokerToken {
			jokers++
		}
	}
	if jokers != 1 {
		t.Fatalf("jokers in queue = %d, want 1 (converted late token)", jokers)
	}
}

// TestSKnOKeyDeterminism: Key() is stable and distinguishes states.
func TestSKnOKeyDeterminism(t *testing.T) {
	s := sim.SKnO{P: protocols.Pairing{}, O: 1}
	a := s.Wrap(protocols.Producer, 0)
	if a.Key() != s.Wrap(protocols.Producer, 0).Key() {
		t.Error("identical states have different keys")
	}
	if a.Key() == s.Wrap(protocols.Consumer, 0).Key() {
		t.Error("different simulated states share a key")
	}
	if a.Key() == s.Detect(a).Key() {
		t.Error("transitioned state shares key with original")
	}
}
