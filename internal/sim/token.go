package sim

import (
	"fmt"
	"strconv"
	"strings"

	"popsim/internal/pp"
)

// TokenKind distinguishes the three token species of the SKnO simulator
// (Section 4.1 of the paper).
type TokenKind int

// Token kinds.
const (
	// AnnounceToken is ⟨q, i⟩: the i-th token of an announcement run for
	// simulated state q.
	AnnounceToken TokenKind = iota + 1
	// ChangeToken is ⟨(q, q′), i⟩: the i-th token of a state-change run,
	// telling a pending agent in state q that its announcement was
	// consumed by an agent whose simulated state was q′.
	ChangeToken
	// JokerToken is ⟨J⟩: a wildcard minted when an omission is detected.
	JokerToken
)

// String implements fmt.Stringer.
func (k TokenKind) String() string {
	switch k {
	case AnnounceToken:
		return "announce"
	case ChangeToken:
		return "change"
	case JokerToken:
		return "joker"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is one circulating token of the SKnO simulator. Tokens are
// immutable values.
type Token struct {
	Kind TokenKind
	// Q is the announced state (AnnounceToken) or the pending agent's
	// state the change is addressed to (ChangeToken).
	Q pp.State
	// Via is the consumer's simulated pre-state q′ (ChangeToken only).
	Via pp.State
	// Idx is the token's position in its run, 1..o+1.
	Idx int
	// Tag is the verification-only provenance label of the consumption
	// that emitted this change run (ChangeToken only). Protocol logic
	// never branches on it and the canonical Key excludes it: tokens of
	// equal (kind, Q, Via, Idx) are behaviorally indistinguishable, as in
	// the paper, where tokens carry no provenance at all.
	Tag string

	// key memoizes the canonical encoding (see Memoized). Copies of a
	// memoized token share the key for free; zero-value tokens fall back
	// to computing it per call.
	key string
}

// Memoized returns a copy of t with its canonical Key precomputed, so Key
// calls on the copy — and on every further copy of it — are allocation-free.
// Token constructors on hot paths (announcement and state-change runs)
// memoize at build time.
func (t Token) Memoized() Token {
	t.key = t.buildKey()
	return t
}

// Key returns the canonical encoding of the token: exactly the content the
// simulator's transition logic reads — kind, announced/addressed states and
// run index. The provenance Tag is deliberately excluded (it never influences
// behavior), so behaviorally interchangeable tokens share one key and wrapped
// states containing them intern to the same dense ID.
func (t Token) Key() string {
	if t.key != "" {
		return t.key
	}
	return t.buildKey()
}

func (t Token) buildKey() string {
	var b strings.Builder
	b.Grow(8 + keyLen(t.Q) + keyLen(t.Via))
	switch t.Kind {
	case AnnounceToken:
		b.WriteString("A:")
		b.WriteString(t.Q.Key())
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(t.Idx))
	case ChangeToken:
		b.WriteString("C:")
		b.WriteString(t.Q.Key())
		b.WriteByte('>')
		b.WriteString(t.Via.Key())
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(t.Idx))
	case JokerToken:
		b.WriteString("J")
	}
	return b.String()
}

// keyLen returns the key length of a possibly-nil state.
func keyLen(s pp.State) int {
	if s == nil {
		return 0
	}
	return len(s.Key())
}

// SlotKey identifies the token's logical slot — the (run-type, index) pair a
// joker may substitute for — ignoring provenance tags. Debt bookkeeping (the
// "Rummy rule") is keyed by slots.
func (t Token) SlotKey() string {
	switch t.Kind {
	case AnnounceToken:
		return "A:" + t.Q.Key() + ":" + strconv.Itoa(t.Idx)
	case ChangeToken:
		return "C:" + t.Q.Key() + ">" + t.Via.Key() + ":" + strconv.Itoa(t.Idx)
	default:
		return "J"
	}
}

// String renders the token.
func (t Token) String() string { return t.Key() }
