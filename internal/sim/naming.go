package sim

import (
	"strconv"
	"strings"

	"popsim/internal/pp"
	"popsim/internal/verify"
)

// Naming is the simulator of Section 4.3 (Theorem 4.6): assuming the
// Immediate Observation model and knowledge of n, it first runs the naming
// protocol Nn to assign unique IDs (all agents start with my_id = 1; a
// reactor meeting a starter with the same my_id increments its own; the
// maximum witnessed ID is gossiped), and each agent whose gossiped maximum
// reaches n calls start_sim(my_id), joining the SID simulator of
// Section 4.2.
//
// By Lemma 3 of the paper, when the witnessed maximum reaches n all IDs are
// unique and stable, so SID's assumptions hold from the moment any agent
// starts simulating.
type Naming struct {
	// P is the simulated two-way protocol.
	P pp.TwoWay
	// N is the known population size.
	N int
}

var _ pp.OneWay = Naming{}

// Name implements pp.OneWay.
func (s Naming) Name() string { return "naming(n=" + strconv.Itoa(s.N) + ")/" + s.P.Name() }

// sid returns the inner SID simulator.
func (s Naming) sid() SID { return SID{P: s.P} }

// Wrap builds the initial wrapped state of an agent with initial simulated
// state sim. All agents start identically (my_id = max_id = 1): unlike SID,
// no pre-assigned identity is needed.
func (s Naming) Wrap(sim pp.State) *NamingState {
	return &NamingState{myID: 1, maxID: 1, n: s.N, sim: sim}
}

// WrapConfig wraps a simulated initial configuration.
func (s Naming) WrapConfig(simCfg pp.Configuration) pp.Configuration {
	out := make(pp.Configuration, len(simCfg))
	for i, st := range simCfg {
		out[i] = s.Wrap(st)
	}
	return out
}

// NamingState is the wrapped state of one Nn agent: the naming variables
// (my_id, max_id, the known n), the initial simulated state held until
// start_sim, and — once started — the inner SID state.
type NamingState struct {
	myID  int
	maxID int
	n     int
	sim   pp.State  // simulated initial state, authoritative until started
	inner *SIDState // non-nil once start_sim(my_id) ran

	// key memoizes the canonical Key (cleared on clone).
	key string
}

var (
	_ Wrapped     = (*NamingState)(nil)
	_ MemoryBytes = (*NamingState)(nil)
)

// Started reports whether the agent has joined the SID simulation.
func (a *NamingState) Started() bool { return a.inner != nil }

// MyID returns the agent's current my_id.
func (a *NamingState) MyID() int { return a.myID }

// MaxID returns the agent's gossiped maximum ID.
func (a *NamingState) MaxID() int { return a.maxID }

// Simulated implements Wrapped.
func (a *NamingState) Simulated() pp.State {
	if a.inner != nil {
		return a.inner.Simulated()
	}
	return a.sim
}

// EventSeq implements Wrapped.
func (a *NamingState) EventSeq() uint64 {
	if a.inner != nil {
		return a.inner.EventSeq()
	}
	return 0
}

// LastEvent implements Wrapped.
func (a *NamingState) LastEvent() verify.Event {
	if a.inner != nil {
		return a.inner.LastEvent()
	}
	return verify.Event{}
}

// Key implements pp.State. The encoding is canonical-behavioral: the naming
// variables (my_id, max_id, n) are all read by the transition logic, and the
// inner SID key is itself canonical, so the composed key carries no
// provenance. Memoized on first call; memoization is unsynchronized: first
// calls must not race (executions are single-goroutine; share states across
// goroutines only after keying them).
func (a *NamingState) Key() string {
	if a.key == "" {
		a.key = a.buildKey()
	}
	return a.key
}

// CanonicalKey implements CanonicalKeyed: Key is purely behavioral.
func (a *NamingState) CanonicalKey() {}

func (a *NamingState) buildKey() string {
	var b strings.Builder
	size := 40
	if a.inner != nil {
		size += len(a.inner.Key())
	} else {
		size += len(a.sim.Key())
	}
	b.Grow(size)
	b.WriteString("nam{")
	b.WriteString(strconv.Itoa(a.myID))
	b.WriteByte(';')
	b.WriteString(strconv.Itoa(a.maxID))
	b.WriteByte(';')
	b.WriteString(strconv.Itoa(a.n))
	b.WriteByte(';')
	if a.inner != nil {
		b.WriteString(a.inner.Key())
	} else {
		b.WriteString(a.sim.Key())
	}
	b.WriteByte('}')
	return b.String()
}

// MemoryBytes implements MemoryBytes: two Θ(log n) counters plus the inner
// SID memory once started.
func (a *NamingState) MemoryBytes() int {
	total := bitsLen(a.myID)/8 + 1 + bitsLen(a.maxID)/8 + 1 + bitsLen(a.n)/8 + 1
	if a.inner != nil {
		total += a.inner.MemoryBytes()
	}
	return total
}

// clone returns a copy ready for mutation (the inner SID state is immutable
// and shared until replaced).
func (a *NamingState) clone() *NamingState {
	cp := *a
	cp.key = "" // the clone is about to be mutated
	return &cp
}

// maybeStart invokes start_sim(my_id) when the gossiped maximum reached n.
func (s Naming) maybeStart(a *NamingState) {
	if a.inner == nil && a.maxID >= s.N {
		a.inner = s.sid().Wrap(a.sim, a.myID)
	}
}

// Detect implements pp.OneWay: identity (Immediate Observation).
func (s Naming) Detect(starter pp.State) pp.State { return starter }

// React implements pp.OneWay.
func (s Naming) React(starter, reactor pp.State) pp.State {
	sa, ok1 := starter.(*NamingState)
	ra, ok2 := reactor.(*NamingState)
	if !ok1 || !ok2 {
		return reactor
	}
	r := ra.clone()
	if r.inner == nil {
		// Naming phase: collision ⇒ increment; gossip the maximum.
		if sa.myID == r.myID {
			r.myID++
		}
		r.maxID = max4(r.maxID, r.myID, sa.myID, sa.maxID)
		s.maybeStart(r)
		return r
	}
	// Simulation phase: delegate to SID once both sides are simulating; a
	// not-yet-started starter carries no SID variables to observe.
	if sa.inner == nil {
		return r
	}
	next := s.sid().React(sa.inner, r.inner)
	ns, ok := next.(*SIDState)
	if !ok {
		return r
	}
	r.inner = ns
	return r
}

// max4 returns the maximum of four ints.
func max4(a, b, c, d int) int {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	if d > m {
		m = d
	}
	return m
}
