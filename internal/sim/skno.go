package sim

import (
	"sort"
	"strconv"
	"strings"

	"popsim/internal/pp"
	"popsim/internal/verify"
)

// Mode is the simulator-protocol state of an SKnO agent.
type Mode int

// Modes.
const (
	// Available: the agent has no outstanding announcement.
	Available Mode = iota + 1
	// Pending: the agent announced its simulated state and is waiting
	// for a state-change run.
	Pending
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Available:
		return "available"
	case Pending:
		return "pending"
	default:
		return "mode?"
	}
}

// SKnO is the token-based simulator of Section 4.1 of the paper
// (Theorem 4.1): it simulates an arbitrary two-way protocol P in the
// omissive one-way models I3 and I4, provided an upper bound O on the number
// of omissions in the run. With O = 0 under the Immediate Transmission
// model, it is the simulator of Corollary 1.
//
// Mechanics: every simulated state is represented as a run of O+1 numbered
// tokens. An available agent with an empty queue announces its simulated
// state by enqueueing the run ⟨q,1⟩…⟨q,O+1⟩ and becomes pending; as a
// starter it transmits the head of its queue. A reactor enqueues what it
// receives — or a joker ⟨J⟩ when it detects an omission (model I3; in I4 the
// *starter* detects the omission and mints the joker, compensating the
// reactor's unknowing loss). An available reactor that can assemble a
// complete run for some state q (jokers acting as wildcards, with the
// "Rummy" debt rule) consumes it, applies δP(q, ·)[1], and emits a
// state-change run ⟨(q, q′),1⟩…⟨(q, q′),O+1⟩ where q′ was its own simulated
// state; a pending agent in state q that assembles such a change run applies
// δP(q, q′)[0] and becomes available again.
type SKnO struct {
	// P is the simulated two-way protocol.
	P pp.TwoWay
	// O is the promised upper bound on omissions; runs have O+1 tokens.
	O int
}

var (
	_ pp.OneWay               = SKnO{}
	_ pp.StarterOmissionAware = SKnO{}
	_ pp.ReactorOmissionAware = SKnO{}
)

// runLen returns the number of tokens per run, o+1.
func (s SKnO) runLen() int { return s.O + 1 }

// Name implements pp.OneWay.
func (s SKnO) Name() string {
	return "skno(o=" + strconv.Itoa(s.O) + ")/" + s.P.Name()
}

// Wrap builds the initial wrapped state of an agent whose simulated state is
// sim. origin is a verification-only instrumentation index (normally the
// agent's position in the initial configuration); protocol logic never
// reads it.
func (s SKnO) Wrap(sim pp.State, origin int) *SKnOState {
	return &SKnOState{
		sim:    sim,
		mode:   Available,
		origin: origin,
	}
}

// WrapConfig wraps an entire simulated initial configuration.
func (s SKnO) WrapConfig(simCfg pp.Configuration) pp.Configuration {
	out := make(pp.Configuration, len(simCfg))
	for i, st := range simCfg {
		out[i] = s.Wrap(st, i)
	}
	return out
}

// SKnOState is the wrapped state QP × QS of one SKnO agent. Values are
// immutable: all transitions operate on clones.
type SKnOState struct {
	sim     pp.State
	mode    Mode
	sending []Token
	// debt is the paper's Jokers multi-set: slot → how many jokers were
	// used as substitutes for that slot ("Rummy rule").
	debt map[string]int

	// Verification-only instrumentation: never read by transitions and
	// excluded from the canonical Key, so the interner collapses states
	// that differ only in provenance. Runs driven through the interned
	// fast path recover per-agent provenance from the run-level recorder
	// (trace.Provenance), not from these fields.
	origin    int
	gen       uint64
	lastEvent verify.Event

	// key memoizes the canonical Key: states are immutable once
	// published, so the encoding is computed at most once per state
	// instead of once per comparison. clone deliberately drops it.
	key string
}

var (
	_ Wrapped     = (*SKnOState)(nil)
	_ MemoryBytes = (*SKnOState)(nil)
)

// Simulated implements Wrapped (the projection piP).
func (a *SKnOState) Simulated() pp.State { return a.sim }

// EventSeq implements Wrapped.
func (a *SKnOState) EventSeq() uint64 { return a.gen }

// LastEvent implements Wrapped.
func (a *SKnOState) LastEvent() verify.Event { return a.lastEvent }

// Mode returns the simulator-protocol state (available/pending).
func (a *SKnOState) Mode() Mode { return a.mode }

// Queue returns a copy of the sending queue.
func (a *SKnOState) Queue() []Token { return append([]Token(nil), a.sending...) }

// DebtSize returns the total multiplicity of the Jokers debt multiset.
func (a *SKnOState) DebtSize() int {
	total := 0
	for _, c := range a.debt {
		total += c
	}
	return total
}

// Key implements pp.State. The encoding is canonical-behavioral: it covers
// exactly what the transition functions read — simulated state, mode, the
// token queue (tag-free token keys, in order) and the joker debt — and
// excludes the instrumentation fields (origin, gen, event cache). Two SKnO
// states with equal keys are behaviorally indistinguishable, which is what
// lets the interner, transition cache and sharded runner treat wrapped runs
// as a bounded state space. Memoized on first call; memoization is
// unsynchronized: first calls must not race (executions are
// single-goroutine; share states across goroutines only after keying them).
func (a *SKnOState) Key() string {
	if a.key == "" {
		a.key = a.buildKey()
	}
	return a.key
}

// CanonicalKey implements CanonicalKeyed: Key is purely behavioral.
func (a *SKnOState) CanonicalKey() {}

func (a *SKnOState) buildKey() string {
	var b strings.Builder
	size := 32 + len(a.sim.Key())
	for _, t := range a.sending {
		size += len(t.Key()) + 1
	}
	for k := range a.debt {
		size += len(k) + 8
	}
	b.Grow(size)
	b.WriteString("skno{")
	b.WriteString(a.sim.Key())
	b.WriteByte(';')
	b.WriteString(a.mode.String())
	b.WriteByte(';')
	for i, t := range a.sending {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.Key())
	}
	b.WriteByte(';')
	keys := make([]string, 0, len(a.debt))
	for k := range a.debt {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('*')
		b.WriteString(strconv.Itoa(a.debt[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// MemoryBytes implements MemoryBytes: an architecture-independent proxy for
// the simulator memory (token keys plus debt entries plus mode/counters).
func (a *SKnOState) MemoryBytes() int {
	total := 16 // mode, counters
	for _, t := range a.sending {
		total += len(t.Key())
	}
	for k, c := range a.debt {
		total += len(k) + 8*c
	}
	return total
}

// clone returns a deep copy ready for mutation.
func (a *SKnOState) clone() *SKnOState {
	// key is intentionally not copied: the clone is about to be mutated.
	cp := &SKnOState{
		sim:       a.sim,
		mode:      a.mode,
		sending:   append([]Token(nil), a.sending...),
		origin:    a.origin,
		gen:       a.gen,
		lastEvent: a.lastEvent,
	}
	if len(a.debt) > 0 {
		cp.debt = make(map[string]int, len(a.debt))
		for k, v := range a.debt {
			cp.debt[k] = v
		}
	}
	return cp
}

// announceRun builds the announcement run for state q.
func (s SKnO) announceRun(q pp.State) []Token {
	run := make([]Token, 0, s.runLen())
	for i := 1; i <= s.runLen(); i++ {
		run = append(run, Token{Kind: AnnounceToken, Q: q, Idx: i}.Memoized())
	}
	return run
}

// changeRun builds the state-change run for (q, via) tagged with the
// consumption provenance tag.
func (s SKnO) changeRun(q, via pp.State, tag string) []Token {
	run := make([]Token, 0, s.runLen())
	for i := 1; i <= s.runLen(); i++ {
		run = append(run, Token{Kind: ChangeToken, Q: q, Via: via, Idx: i, Tag: tag}.Memoized())
	}
	return run
}

// transmittedToken computes the token a starter in state st transmits,
// mirroring Detect: the head of the queue after the (possible) announcement.
func (s SKnO) transmittedToken(st *SKnOState) (Token, bool) {
	if st.mode == Available && len(st.sending) == 0 {
		return Token{Kind: AnnounceToken, Q: st.sim, Idx: 1}.Memoized(), true
	}
	if len(st.sending) > 0 {
		return st.sending[0], true
	}
	return Token{}, false
}

// Detect implements pp.OneWay: the starter-side update g. If the agent is
// available with an empty queue it announces its simulated state (becoming
// pending); in any case it pops the head of its queue — the transmitted
// token.
func (s SKnO) Detect(starter pp.State) pp.State {
	a, ok := starter.(*SKnOState)
	if !ok {
		return starter
	}
	cp := a.clone()
	if cp.mode == Available && len(cp.sending) == 0 {
		cp.mode = Pending
		cp.sending = append(cp.sending, s.announceRun(cp.sim)...)
	}
	if len(cp.sending) > 0 {
		cp.sending = cp.sending[1:]
	}
	return cp
}

// React implements pp.OneWay: the reactor-side update f. The reactor reads
// the starter's transmitted token, enqueues it (with the Rummy debt rule),
// then settles: preliminary check first, then the core consumption step.
func (s SKnO) React(starter, reactor pp.State) pp.State {
	sa, ok1 := starter.(*SKnOState)
	ra, ok2 := reactor.(*SKnOState)
	if !ok1 || !ok2 {
		return reactor
	}
	cp := ra.clone()
	if tok, ok := s.transmittedToken(sa); ok {
		s.receive(cp, tok)
	}
	s.settle(cp)
	return cp
}

// OnReactorOmission implements pp.ReactorOmissionAware (model I3): the
// reactor detected an omission, so it enqueues a joker in place of the lost
// token and settles.
func (s SKnO) OnReactorOmission(reactor pp.State) pp.State {
	ra, ok := reactor.(*SKnOState)
	if !ok {
		return reactor
	}
	cp := ra.clone()
	cp.sending = append(cp.sending, jokerTok)
	s.settle(cp)
	return cp
}

// OnStarterOmission implements pp.StarterOmissionAware (model I4): the
// starter detected that the transmission failed. It keeps its queue intact
// (nothing of its own was delivered or lost — in I4 the *reactor* applies g
// and unknowingly pops a token into the void) and mints a compensating
// joker, then settles.
func (s SKnO) OnStarterOmission(starter pp.State) pp.State {
	sa, ok := starter.(*SKnOState)
	if !ok {
		return starter
	}
	cp := sa.clone()
	cp.sending = append(cp.sending, jokerTok)
	s.settle(cp)
	return cp
}

// jokerTok is the (memoized) wildcard token.
var jokerTok = Token{Kind: JokerToken}.Memoized()

// receive enqueues a received token, applying the Rummy rule: if the token's
// slot is in the debt multiset, the token is converted back into a joker and
// the debt is repaid.
func (s SKnO) receive(a *SKnOState, tok Token) {
	if tok.Kind != JokerToken {
		slot := tok.SlotKey()
		if a.debt[slot] > 0 {
			a.debt[slot]--
			if a.debt[slot] == 0 {
				delete(a.debt, slot)
			}
			a.sending = append(a.sending, jokerTok)
			return
		}
	}
	a.sending = append(a.sending, tok)
}

// settle performs the reactor-side bookkeeping of the paper: the preliminary
// check (a pending agent retracting its own-state announcement) followed by
// the core step (an available agent consuming an announcement run, or a
// pending agent consuming a state-change run).
func (s SKnO) settle(a *SKnOState) {
	// Preliminary check.
	if a.mode == Pending {
		if used, ok := s.findRun(a, func(t Token) bool {
			return t.Kind == AnnounceToken && pp.Equal(t.Q, a.sim)
		}); ok {
			s.consume(a, used)
			a.mode = Available
		}
	}
	switch a.mode {
	case Available:
		s.consumeAnnouncement(a)
	case Pending:
		s.consumeChange(a)
	}
}

// runCandidate is one assemblable run: the tokens covering each index (some
// possibly jokers).
type runCandidate struct {
	// byIdx[i-1] is the queue position of the token used for index i, or
	// -1 if a joker must substitute.
	byIdx []int
	// jokers lists the queue positions of the jokers used.
	jokers []int
	// rep is a representative real token of the run (defines Q/Via/Tag).
	rep Token
	// key orders candidates deterministically.
	key string
}

// findRun tries to assemble a complete run (indices 1..o+1) from queue
// tokens matching the filter, using jokers as wildcards for missing indices.
// It returns the queue positions of all o+1 used tokens.
func (s SKnO) findRun(a *SKnOState, match func(Token) bool) ([]int, bool) {
	cands := s.candidates(a, match)
	if len(cands) == 0 {
		return nil, false
	}
	best := cands[0]
	used := make([]int, 0, s.runLen())
	used = append(used, best.jokers...)
	for _, pos := range best.byIdx {
		if pos >= 0 {
			used = append(used, pos)
		}
	}
	// Record joker debt for the substituted slots.
	for i, pos := range best.byIdx {
		if pos < 0 {
			slot := Token{Kind: best.rep.Kind, Q: best.rep.Q, Via: best.rep.Via, Idx: i + 1, Tag: best.rep.Tag}.SlotKey()
			if a.debt == nil {
				a.debt = make(map[string]int)
			}
			a.debt[slot]++
		}
	}
	return used, true
}

// candidates enumerates assemblable runs among tokens matching the filter,
// cheapest (fewest jokers) first, ties broken by run key. Runs are grouped
// by their content identity: (kind, Q) for announcements, (kind, Q, Via) for
// change runs — tags of change tokens may mix across consumptions, as in the
// paper, where tokens of equal (q, q′, i) are indistinguishable.
func (s SKnO) candidates(a *SKnOState, match func(Token) bool) []runCandidate {
	type group struct {
		byIdx []int
		rep   Token
	}
	groups := make(map[string]*group)
	jokers := make([]int, 0, 4)
	for pos, t := range a.sending {
		if t.Kind == JokerToken {
			jokers = append(jokers, pos)
			continue
		}
		if !match(t) {
			continue
		}
		gk := groupKey(t)
		g := groups[gk]
		if g == nil {
			g = &group{byIdx: make([]int, s.runLen())}
			for i := range g.byIdx {
				g.byIdx[i] = -1
			}
			g.rep = t
			groups[gk] = g
		}
		if t.Idx >= 1 && t.Idx <= s.runLen() && g.byIdx[t.Idx-1] < 0 {
			g.byIdx[t.Idx-1] = pos
		}
	}
	out := make([]runCandidate, 0, len(groups))
	for gk, g := range groups {
		missing := 0
		for _, pos := range g.byIdx {
			if pos < 0 {
				missing++
			}
		}
		if missing > len(jokers) {
			continue
		}
		out = append(out, runCandidate{
			byIdx:  g.byIdx,
			jokers: append([]int(nil), jokers[:missing]...),
			rep:    g.rep,
			key:    gk,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].jokers) != len(out[j].jokers) {
			return len(out[i].jokers) < len(out[j].jokers)
		}
		return out[i].key < out[j].key
	})
	return out
}

// groupKey is the content identity of a token's run.
func groupKey(t Token) string {
	switch t.Kind {
	case AnnounceToken:
		return "A:" + t.Q.Key()
	case ChangeToken:
		return "C:" + t.Q.Key() + ">" + t.Via.Key()
	default:
		return "J"
	}
}

// consume removes the tokens at the given queue positions.
func (s SKnO) consume(a *SKnOState, positions []int) {
	drop := make(map[int]bool, len(positions))
	for _, p := range positions {
		drop[p] = true
	}
	kept := a.sending[:0]
	for pos, t := range a.sending {
		if !drop[pos] {
			kept = append(kept, t)
		}
	}
	a.sending = kept
}

// consumeAnnouncement is the core step for available agents: assemble a
// complete announcement run for some state q, apply δP(q, ·)[1], and emit
// the state-change run.
func (s SKnO) consumeAnnouncement(a *SKnOState) {
	cands := s.candidates(a, func(t Token) bool { return t.Kind == AnnounceToken })
	if len(cands) == 0 {
		return
	}
	best := cands[0]
	q := best.rep.Q
	used := make([]int, 0, s.runLen())
	used = append(used, best.jokers...)
	for i, pos := range best.byIdx {
		if pos >= 0 {
			used = append(used, pos)
			continue
		}
		slot := Token{Kind: AnnounceToken, Q: q, Idx: i + 1}.SlotKey()
		if a.debt == nil {
			a.debt = make(map[string]int)
		}
		a.debt[slot]++
	}
	s.consume(a, used)

	pre := a.sim
	_, post := s.P.Delta(q, pre)
	a.gen++
	tag := strconv.Itoa(a.origin) + "." + strconv.FormatUint(a.gen, 10)
	a.sim = post
	a.lastEvent = verify.Event{
		Seq:        a.gen,
		Role:       verify.SimReactor,
		Pre:        pre,
		Post:       post,
		PartnerPre: q,
		Tag:        tag,
	}
	a.sending = append(a.sending, s.changeRun(q, pre, tag)...)
}

// consumeChange is the core step for pending agents: assemble a complete
// state-change run addressed to the agent's simulated state and complete the
// simulated interaction with δP(q, q′)[0].
func (s SKnO) consumeChange(a *SKnOState) {
	used, ok := s.findRun(a, func(t Token) bool {
		return t.Kind == ChangeToken && pp.Equal(t.Q, a.sim)
	})
	if !ok {
		return
	}
	// Identify the run's content before removal.
	var rep Token
	for _, pos := range used {
		if a.sending[pos].Kind == ChangeToken {
			rep = a.sending[pos]
			break
		}
	}
	s.consume(a, used)
	if rep.Kind != ChangeToken {
		// All-jokers runs carry no content; refuse (cannot happen with
		// o+1 ≥ 1 real token per run and at most o jokers, but guard
		// against a hostile mix).
		return
	}
	pre := a.sim
	post, _ := s.P.Delta(pre, rep.Via)
	a.gen++
	a.sim = post
	a.mode = Available
	a.lastEvent = verify.Event{
		Seq:        a.gen,
		Role:       verify.SimStarter,
		Pre:        pre,
		Post:       post,
		PartnerPre: rep.Via,
		Tag:        rep.Tag,
	}
}
