package sim_test

import (
	"fmt"
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
	"popsim/internal/verify"
)

// allStarted reports whether every agent has invoked start_sim.
func allStarted(cfg pp.Configuration) bool {
	for _, st := range cfg {
		ns, ok := st.(*sim.NamingState)
		if !ok || !ns.Started() {
			return false
		}
	}
	return true
}

// TestNamingAssignsUniqueIDs checks Lemma 3: by the time the gossiped
// maximum reaches n everywhere, the my_id values are a permutation of 1..n.
func TestNamingAssignsUniqueIDs(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			s := sim.Naming{P: protocols.Or{}, N: n}
			simCfg := protocols.OrConfig(n, 1)
			eng, err := engine.New(model.IO, s, s.WrapConfig(simCfg), sched.NewRandom(int64(n)))
			if err != nil {
				t.Fatalf("engine.New: %v", err)
			}
			done, err := eng.RunUntil(allStarted, 400*n*n)
			if err != nil {
				t.Fatalf("RunUntil: %v", err)
			}
			if !done {
				t.Fatalf("naming did not converge within %d interactions", 400*n*n)
			}
			seen := make(map[int]bool, n)
			for _, st := range eng.Config() {
				ns := st.(*sim.NamingState)
				id := ns.MyID()
				if id < 1 || id > n {
					t.Fatalf("id %d out of range 1..%d", id, n)
				}
				if seen[id] {
					t.Fatalf("duplicate id %d", id)
				}
				seen[id] = true
			}
		})
	}
}

// TestNamingThenSimulation is the Theorem 4.6 end-to-end check: Nn names the
// agents, hands over to SID, and the composed protocol simulates a two-way
// protocol correctly in IO knowing only n.
func TestNamingThenSimulation(t *testing.T) {
	for _, tc := range []struct{ c, p int }{{2, 2}, {3, 2}} {
		tc := tc
		t.Run(fmt.Sprintf("c=%d_p=%d", tc.c, tc.p), func(t *testing.T) {
			n := tc.c + tc.p
			prot := protocols.Pairing{}
			s := sim.Naming{P: prot, N: n}
			simCfg := protocols.PairingConfig(tc.c, tc.p)
			rec := &trace.Recorder{}
			eng, err := engine.New(model.IO, s, s.WrapConfig(simCfg), sched.NewRandom(int64(n)*3),
				engine.WithRecorder(rec))
			if err != nil {
				t.Fatalf("engine.New: %v", err)
			}
			if err := eng.RunSteps(120000); err != nil {
				t.Fatalf("RunSteps: %v", err)
			}
			proj := sim.Project(eng.Config())
			if !protocols.PairingSafe(proj, tc.p) {
				t.Fatalf("SAFETY violated: served=%d > producers=%d",
					proj.Count(protocols.Served), tc.p)
			}
			if !protocols.PairingDone(proj, tc.c, tc.p) {
				t.Fatalf("liveness: served=%d want %d", proj.Count(protocols.Served), min(tc.c, tc.p))
			}
			rep := verify.VerifyStrict(rec.Events(), simCfg, prot.Delta)
			if err := rep.Err(); err != nil {
				t.Fatalf("verification failed: %v", err)
			}
			if err := verify.Replay(rep, rec.Events(), simCfg, prot.Delta); err != nil {
				t.Fatalf("replay failed: %v", err)
			}
		})
	}
}

// TestNamingIDsStableAfterStart: once an agent starts simulating, its my_id
// never changes (Lemma 3's stability claim).
func TestNamingIDsStableAfterStart(t *testing.T) {
	n := 6
	s := sim.Naming{P: protocols.Or{}, N: n}
	simCfg := protocols.OrConfig(n, 2)
	eng, err := engine.New(model.IO, s, s.WrapConfig(simCfg), sched.NewRandom(9))
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	started := make(map[int]int) // agent -> id at start time
	for i := 0; i < 40000; i++ {
		if err := eng.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
		for a, st := range eng.Config() {
			ns := st.(*sim.NamingState)
			if !ns.Started() {
				continue
			}
			if id0, ok := started[a]; ok {
				if ns.MyID() != id0 {
					t.Fatalf("agent %d changed id after start: %d -> %d", a, id0, ns.MyID())
				}
				continue
			}
			started[a] = ns.MyID()
		}
	}
	if len(started) != n {
		t.Fatalf("only %d/%d agents started", len(started), n)
	}
}
