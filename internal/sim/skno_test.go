package sim_test

import (
	"fmt"
	"testing"

	"popsim/internal/adversary"
	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
	"popsim/internal/verify"
)

// runSKnO drives the SKnO simulator for the given protocol and simulated
// initial configuration under the given model with at most o omissions, and
// returns the engine and recorder after the run.
func runSKnO(t *testing.T, p pp.TwoWay, simCfg pp.Configuration, k model.Kind, o int, seed int64, steps int) (*engine.Engine, *trace.Recorder) {
	t.Helper()
	s := sim.SKnO{P: p, O: o}
	rec := &trace.Recorder{}
	var adv adversary.Adversary = adversary.None{}
	if o > 0 {
		adv = adversary.NewBudgeted(seed+1, 0.05, o)
	}
	eng, err := engine.New(k, s, s.WrapConfig(simCfg), sched.NewRandom(seed),
		engine.WithAdversary(adv), engine.WithRecorder(rec))
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	if err := eng.RunSteps(steps); err != nil {
		t.Fatalf("RunSteps: %v", err)
	}
	return eng, rec
}

// verifySKnO runs both verification levels on a recorded run: the literal
// Definition-3/4 check, and the strict variant whose matching additionally
// replays the derived execution snapshot-exactly.
func verifySKnO(t *testing.T, p pp.TwoWay, simCfg pp.Configuration, rec *trace.Recorder) *verify.Report {
	t.Helper()
	rep := verify.Verify(rec.Events(), simCfg, p.Delta)
	if err := rep.Err(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	strict := verify.VerifyStrict(rec.Events(), simCfg, p.Delta)
	if err := strict.Err(); err != nil {
		t.Fatalf("strict verification failed: %v", err)
	}
	if err := verify.Replay(strict, rec.Events(), simCfg, p.Delta); err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if got, limit := rep.Unmatched(), len(simCfg); got > limit {
		t.Errorf("unmatched events = %d, want ≤ n = %d", got, limit)
	}
	return rep
}

func TestSKnOTwoAgentsNoOmissionsIT(t *testing.T) {
	// Corollary 1 setting: o = 0 under Immediate Transmission.
	simCfg := protocols.PairingConfig(1, 1)
	eng, rec := runSKnO(t, protocols.Pairing{}, simCfg, model.IT, 0, 1, 400)
	proj := sim.Project(eng.Config())
	if !protocols.PairingDone(proj, 1, 1) {
		t.Fatalf("pairing not completed: %v", proj)
	}
	rep := verifySKnO(t, protocols.Pairing{}, simCfg, rec)
	if len(rep.Pairs) == 0 {
		t.Fatal("no simulated interactions matched")
	}
}

func TestSKnOPairingUnderI3WithOmissions(t *testing.T) {
	for _, o := range []int{0, 1, 2, 4} {
		o := o
		t.Run(fmt.Sprintf("o=%d", o), func(t *testing.T) {
			simCfg := protocols.PairingConfig(3, 2)
			eng, rec := runSKnO(t, protocols.Pairing{}, simCfg, model.I3, o, 42+int64(o), 30000)
			proj := sim.Project(eng.Config())
			if !protocols.PairingSafe(proj, 2) {
				t.Fatalf("SAFETY violated: %d served > 2 producers", proj.Count(protocols.Served))
			}
			if !protocols.PairingDone(proj, 3, 2) {
				t.Fatalf("liveness: served=%d want 2 after %d steps (omissions=%d)",
					proj.Count(protocols.Served), rec.Steps(), rec.Omissions())
			}
			verifySKnO(t, protocols.Pairing{}, simCfg, rec)
		})
	}
}

func TestSKnOPairingUnderI4WithOmissions(t *testing.T) {
	for _, o := range []int{1, 3} {
		o := o
		t.Run(fmt.Sprintf("o=%d", o), func(t *testing.T) {
			simCfg := protocols.PairingConfig(2, 2)
			eng, rec := runSKnO(t, protocols.Pairing{}, simCfg, model.I4, o, 99+int64(o), 30000)
			proj := sim.Project(eng.Config())
			if !protocols.PairingSafe(proj, 2) {
				t.Fatalf("SAFETY violated: %d served > 2 producers", proj.Count(protocols.Served))
			}
			if !protocols.PairingDone(proj, 2, 2) {
				t.Fatalf("liveness: served=%d want 2 (omissions=%d)", proj.Count(protocols.Served), rec.Omissions())
			}
			verifySKnO(t, protocols.Pairing{}, simCfg, rec)
		})
	}
}

func TestSKnOMajorityUnderI3(t *testing.T) {
	simCfg := protocols.MajorityConfig(4, 2)
	eng, rec := runSKnO(t, protocols.Majority{}, simCfg, model.I3, 2, 7, 60000)
	proj := sim.Project(eng.Config())
	if !protocols.MajorityInvariant(proj, 4, 2) {
		t.Fatalf("majority invariant broken: %v", proj)
	}
	if !protocols.MajorityConverged(proj, "A") {
		t.Fatalf("majority did not converge to A: %v (steps=%d)", proj, rec.Steps())
	}
	verifySKnO(t, protocols.Majority{}, simCfg, rec)
}

func TestSKnOLeaderElectionUnderIT(t *testing.T) {
	simCfg := protocols.LeaderConfig(5)
	eng, rec := runSKnO(t, protocols.LeaderElection{}, simCfg, model.IT, 0, 3, 60000)
	proj := sim.Project(eng.Config())
	if !protocols.LeaderSafe(proj) {
		t.Fatal("leader count dropped to zero")
	}
	if !protocols.LeaderElected(proj) {
		t.Fatalf("leaders remaining: %d, want 1", proj.Count(protocols.Leader))
	}
	verifySKnO(t, protocols.LeaderElection{}, simCfg, rec)
}

// TestSKnOJokerConservation checks the token-accounting invariant: at every
// point, jokers present in queues plus recorded joker debt equals the number
// of omissions suffered so far.
func TestSKnOJokerConservation(t *testing.T) {
	p := protocols.Pairing{}
	o := 3
	s := sim.SKnO{P: p, O: o}
	simCfg := protocols.PairingConfig(2, 2)
	rec := &trace.Recorder{}
	adv := adversary.NewBudgeted(5, 0.2, o)
	eng, err := engine.New(model.I3, s, s.WrapConfig(simCfg), sched.NewRandom(6),
		engine.WithAdversary(adv), engine.WithRecorder(rec))
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	for i := 0; i < 4000; i++ {
		if err := eng.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		jokers, debt := 0, 0
		for _, st := range eng.Config() {
			a, ok := st.(*sim.SKnOState)
			if !ok {
				t.Fatalf("state %T is not *SKnOState", st)
			}
			for _, tok := range a.Queue() {
				if tok.Kind == sim.JokerToken {
					jokers++
				}
			}
			debt += a.DebtSize()
		}
		if jokers+debt != rec.Omissions() {
			t.Fatalf("step %d: jokers(%d) + debt(%d) != omissions(%d)",
				i, jokers, debt, rec.Omissions())
		}
	}
}

// TestSKnOAnonymity checks that the instrumentation origins do not influence
// projected behaviour: permuting origin tags while keeping the same schedule
// yields identical projected executions.
func TestSKnOAnonymity(t *testing.T) {
	p := protocols.Majority{}
	simCfg := protocols.MajorityConfig(3, 2)
	run := func(originOffset int) []string {
		s := sim.SKnO{P: p, O: 1}
		cfg := make(pp.Configuration, len(simCfg))
		for i, st := range simCfg {
			cfg[i] = s.Wrap(st, i+originOffset)
		}
		rec := &trace.Recorder{}
		eng, err := engine.New(model.I3, s, cfg, sched.NewRandom(11),
			engine.WithAdversary(adversary.NewBudgeted(12, 0.1, 1)),
			engine.WithRecorder(rec))
		if err != nil {
			t.Fatalf("engine.New: %v", err)
		}
		keys := make([]string, 0, 512)
		for i := 0; i < 2000; i++ {
			if err := eng.Step(); err != nil {
				t.Fatalf("step: %v", err)
			}
			keys = append(keys, sim.Project(eng.Config()).Key())
		}
		return keys
	}
	a, b := run(0), run(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("projected executions diverge at step %d: %s vs %s", i, a[i], b[i])
		}
	}
}
