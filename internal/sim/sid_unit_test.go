package sim_test

import (
	"testing"

	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sim"
	"popsim/internal/verify"
)

// The SID state machine, stepped by hand through one full simulated
// interaction (Figure 3 of the paper): pair → lock (δ[0]) → complete (δ[1])
// → release.
func TestSIDStateMachineHappyPath(t *testing.T) {
	s := sim.SID{P: protocols.Pairing{}}
	consumer := pp.State(s.Wrap(protocols.Consumer, 1)) // will pair
	producer := pp.State(s.Wrap(protocols.Producer, 2)) // will lock

	// Step 1 (lines 3–5): consumer observes available producer → pairing.
	consumer = s.React(producer, consumer)
	c := consumer.(*sim.SIDState)
	if c.Mode() != sim.SIDPairing || c.PartnerID() != 2 {
		t.Fatalf("after observe: mode=%v partner=%d", c.Mode(), c.PartnerID())
	}

	// Step 2 (lines 6–9): producer observes the commitment → locked,
	// applies δ(p, c)[0] = ⊥.
	producer = s.React(consumer, producer)
	p := producer.(*sim.SIDState)
	if p.Mode() != sim.SIDLocked || p.PartnerID() != 1 {
		t.Fatalf("after lock: mode=%v partner=%d", p.Mode(), p.PartnerID())
	}
	if !pp.Equal(p.Simulated(), protocols.Spent) {
		t.Fatalf("locked producer simulated = %v, want ⊥", p.Simulated())
	}
	if ev := p.LastEvent(); ev.Role != verify.SimStarter || !pp.Equal(ev.PartnerPre, protocols.Consumer) {
		t.Fatalf("lock event %v", ev)
	}

	// Step 3 (lines 10–13): consumer observes the lock → applies
	// δ(p, c)[1] = cs using its *saved* partner state, and releases.
	consumer = s.React(producer, consumer)
	c = consumer.(*sim.SIDState)
	if c.Mode() != sim.SIDAvailable || c.PartnerID() != 0 {
		t.Fatalf("after complete: mode=%v partner=%d", c.Mode(), c.PartnerID())
	}
	if !pp.Equal(c.Simulated(), protocols.Served) {
		t.Fatalf("consumer simulated = %v, want cs", c.Simulated())
	}
	if ev := c.LastEvent(); ev.Role != verify.SimReactor || ev.Tag != p.LastEvent().Tag {
		t.Fatalf("completion event %v does not share the lock tag %q", ev, p.LastEvent().Tag)
	}

	// Step 4 (lines 14–16): the producer sees the consumer moved on and
	// releases its lock without touching the simulated state again.
	producer = s.React(consumer, producer)
	p = producer.(*sim.SIDState)
	if p.Mode() != sim.SIDAvailable {
		t.Fatalf("after release: mode=%v", p.Mode())
	}
	if !pp.Equal(p.Simulated(), protocols.Spent) {
		t.Fatalf("release changed simulated state: %v", p.Simulated())
	}
}

// TestSIDStaleCommitmentRollsBack: a pairing agent that re-observes its
// chosen partner pointing elsewhere resets without a simulated transition
// (lines 14–16).
func TestSIDStaleCommitmentRollsBack(t *testing.T) {
	s := sim.SID{P: protocols.Pairing{}}
	a := pp.State(s.Wrap(protocols.Consumer, 1))
	b := pp.State(s.Wrap(protocols.Producer, 2))
	a = s.React(b, a) // a pairing on b
	// b remains available (idother = ⊥ ≠ a's id): a must roll back.
	a = s.React(b, a)
	got := a.(*sim.SIDState)
	if got.Mode() != sim.SIDAvailable || got.EventSeq() != 0 {
		t.Fatalf("rollback failed: mode=%v events=%d", got.Mode(), got.EventSeq())
	}
}

// TestSIDLockRequiresMatchingState: line 6 requires state_s_other = stateP;
// a stale saved state must not lock.
func TestSIDLockRequiresMatchingState(t *testing.T) {
	s := sim.SID{P: protocols.Majority{}}
	a := pp.State(s.Wrap(protocols.StrongA, 1))
	b := pp.State(s.Wrap(protocols.StrongB, 2))
	a = s.React(b, a) // a pairing on b, remembering state B
	// b's simulated state changes before it sees the commitment (simulate
	// by rebuilding b in a different state with the same ID).
	bChanged := pp.State(s.Wrap(protocols.WeakB, 2))
	bChanged = s.React(a, bChanged)
	got := bChanged.(*sim.SIDState)
	if got.Mode() != sim.SIDAvailable || got.EventSeq() != 0 {
		t.Fatalf("lock happened on stale state: mode=%v events=%d", got.Mode(), got.EventSeq())
	}
}

// TestSIDOmissionObliviousness: omissive interactions are no-ops for SID in
// every one-way omissive model — the reason the unique-ID column of
// Figure 4 is all-possible.
func TestSIDOmissionObliviousness(t *testing.T) {
	s := sim.SID{P: protocols.Pairing{}}
	a := s.Wrap(protocols.Consumer, 1)
	if got := s.Detect(a); got.Key() != a.Key() {
		t.Error("Detect is not the identity")
	}
	// SID implements neither omission hook, so the model layer applies
	// identities; nothing to do here beyond interface checks.
	if _, ok := any(s).(pp.StarterOmissionAware); ok {
		t.Error("SID must not react to starter-side omissions")
	}
	if _, ok := any(s).(pp.ReactorOmissionAware); ok {
		t.Error("SID must not react to reactor-side omissions")
	}
}
