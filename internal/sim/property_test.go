package sim_test

import (
	"testing"
	"testing/quick"

	"popsim/internal/adversary"
	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/sim"
)

// TestSKnOTransitionsNeverMutateInputs: every SKnO transition function
// returns fresh values; the argument states' canonical keys are unchanged.
// Property-based over random short histories.
func TestSKnOTransitionsNeverMutateInputs(t *testing.T) {
	f := func(seed int64, o8 uint8, steps uint8) bool {
		o := int(o8 % 3)
		s := sim.SKnO{P: protocols.Pairing{}, O: o}
		cfg := s.WrapConfig(protocols.PairingConfig(2, 2))
		rng := sched.NewRandom(seed)
		for i := 0; i < int(steps%60)+5; i++ {
			it, _ := rng.Next(len(cfg))
			sPre, rPre := cfg[it.Starter], cfg[it.Reactor]
			sKey, rKey := sPre.Key(), rPre.Key()
			ns, nr, err := model.Apply(model.I3, s, sPre, rPre, pp.OmissionNone)
			if err != nil {
				return false
			}
			if sPre.Key() != sKey || rPre.Key() != rKey {
				return false // inputs mutated
			}
			cfg[it.Starter], cfg[it.Reactor] = ns, nr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSKnODeterministicReplay: identical seeds (scheduler + adversary) give
// bit-identical executions.
func TestSKnODeterministicReplay(t *testing.T) {
	run := func(seed int64) string {
		s := sim.SKnO{P: protocols.Majority{}, O: 1}
		cfg := s.WrapConfig(protocols.MajorityConfig(3, 2))
		eng, err := engine.New(model.I3, s, cfg, sched.NewRandom(seed),
			engine.WithAdversary(adversary.NewBudgeted(seed+1, 0.05, 1)))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RunSteps(3000); err != nil {
			t.Fatal(err)
		}
		return eng.Config().Key()
	}
	f := func(seed int64) bool { return run(seed) == run(seed) }
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestSKnOProjectionOnlyChangesViaDelta: every change of a projected state
// is explained by δP (one side of it) — property over random executions.
func TestSKnOProjectionOnlyChangesViaDelta(t *testing.T) {
	p := protocols.Pairing{}
	f := func(seed int64) bool {
		s := sim.SKnO{P: p, O: 1}
		cfg := s.WrapConfig(protocols.PairingConfig(2, 2))
		eng, err := engine.New(model.I3, s, cfg, sched.NewRandom(seed),
			engine.WithAdversary(adversary.NewBudgeted(seed+5, 0.05, 1)))
		if err != nil {
			return false
		}
		states := []pp.State{protocols.Consumer, protocols.Producer, protocols.Served, protocols.Spent}
		prev := sim.Project(eng.Config())
		for i := 0; i < 2000; i++ {
			if err := eng.Step(); err != nil {
				return false
			}
			cur := sim.Project(eng.Config())
			for a := range cur {
				if pp.Equal(prev[a], cur[a]) {
					continue
				}
				// The change must be some δ-image: exists q with
				// δ(q, prev)[1] = cur or δ(prev, q)[0] = cur.
				ok := false
				for _, q := range states {
					if _, r := p.Delta(q, prev[a]); pp.Equal(r, cur[a]) {
						ok = true
						break
					}
					if l, _ := p.Delta(prev[a], q); pp.Equal(l, cur[a]) {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

// TestSIDNeverMutatesInputs: same immutability property for SID.
func TestSIDNeverMutatesInputs(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		s := sim.SID{P: protocols.LeaderElection{}}
		cfg := s.WrapConfig(protocols.LeaderConfig(4))
		rng := sched.NewRandom(seed)
		for i := 0; i < int(steps%60)+5; i++ {
			it, _ := rng.Next(len(cfg))
			sPre, rPre := cfg[it.Starter], cfg[it.Reactor]
			sKey, rKey := sPre.Key(), rPre.Key()
			ns, nr, err := model.Apply(model.IO, s, sPre, rPre, pp.OmissionNone)
			if err != nil {
				return false
			}
			if sPre.Key() != sKey || rPre.Key() != rKey {
				return false
			}
			cfg[it.Starter], cfg[it.Reactor] = ns, nr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestNamingMaxGossipMonotone: max_id never decreases and never exceeds n
// once naming has stabilized — over random schedules.
func TestNamingMaxGossipMonotone(t *testing.T) {
	f := func(seed int64) bool {
		n := 5
		s := sim.Naming{P: protocols.Or{}, N: n}
		cfg := s.WrapConfig(protocols.OrConfig(n, 1))
		eng, err := engine.New(model.IO, s, cfg, sched.NewRandom(seed))
		if err != nil {
			return false
		}
		prevMax := make([]int, n)
		for i := 0; i < 3000; i++ {
			if err := eng.Step(); err != nil {
				return false
			}
			for a, st := range eng.Config() {
				ns := st.(*sim.NamingState)
				if ns.MaxID() < prevMax[a] {
					return false
				}
				prevMax[a] = ns.MaxID()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestSKnOUnderNOAdversary: the benign eventually-non-omissive adversary
// with insertions within the budget leaves SKnO fully live.
func TestSKnOUnderNOAdversary(t *testing.T) {
	o := 2
	s := sim.SKnO{P: protocols.Pairing{}, O: o}
	simCfg := protocols.PairingConfig(2, 2)
	adv := adversary.NewNO(3, 0.5, 1, 4) // bursts only before step 4
	eng, err := engine.New(model.I3, s, s.WrapConfig(simCfg), sched.NewRandom(4),
		engine.WithAdversary(adv))
	if err != nil {
		t.Fatal(err)
	}
	done, err := eng.RunUntil(func(c pp.Configuration) bool {
		return protocols.PairingDone(sim.Project(c), 2, 2)
	}, 300000)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Spent() > o {
		t.Skipf("adversary spent %d > o; probe inconclusive for this seed", adv.Spent())
	}
	if !done {
		t.Fatalf("stalled under NO adversary with %d ≤ %d omissions", adv.Spent(), o)
	}
}
