package sim_test

import (
	"testing"

	"popsim/internal/engine"
	"popsim/internal/model"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/sim"
)

// staleCommitmentScript drives three SID agents (a0 = consumer, a1 =
// producer, a2 = consumer) into the situation the Figure 3 lines 14–16
// rollback exists for:
//
//	(1,0) a0 pairs on a1, saving a1's state p;
//	(1,2) a2 pairs on a1 as well;
//	(2,1) a1 locks on a2's commitment, applying δ(p,c)[0] = ⊥ — a0's saved
//	      state p is now stale;
//	(1,2) a2 observes the lock and completes with δ(p,c)[1] = cs.
//
// Afterwards a0 is pairing on a partner whose state changed, and a1 is
// locked on a partner that moved on. Only the rollback rule can release
// either of them.
func staleCommitmentScript() pp.Run {
	return pp.Run{
		{Starter: 1, Reactor: 0},
		{Starter: 1, Reactor: 2},
		{Starter: 2, Reactor: 1},
		{Starter: 1, Reactor: 2},
	}
}

// buildStale runs the script and asserts the stale state: a0 pairing, a1
// locked, a2 available, exactly two simulated events so far.
func buildStale(t *testing.T, disable bool) *engine.Engine {
	t.Helper()
	s := sim.SID{P: protocols.Pairing{}, DisableRollback: disable}
	cfg := s.WrapConfig(protocols.PairingConfig(1, 1))
	// PairingConfig(1,1) gives (c, p); append a second consumer.
	cfg = append(cfg, s.Wrap(protocols.Consumer, 3))
	eng, err := engine.New(model.IO, s, cfg,
		sched.NewScript(staleCommitmentScript(), sched.NewRandom(5)))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunSteps(len(staleCommitmentScript())); err != nil {
		t.Fatal(err)
	}
	wantModes := []sim.SIDMode{sim.SIDPairing, sim.SIDLocked, sim.SIDAvailable}
	for a, st := range eng.Config() {
		ss := st.(*sim.SIDState)
		if ss.Mode() != wantModes[a] {
			t.Fatalf("agent %d mode %v, want %v (scenario not formed)", a, ss.Mode(), wantModes[a])
		}
	}
	return eng
}

// totalEvents sums the agents' simulated-event counters.
func totalEvents(eng *engine.Engine) uint64 {
	var total uint64
	for _, st := range eng.Config() {
		total += st.(*sim.SIDState).EventSeq()
	}
	return total
}

// TestSIDRollbackAblation validates the necessity of the Figure 3 lines
// 14–16 rollback: with it, the stale commitments dissolve and simulated
// interactions keep firing; without it (ablation), a0 stays pairing and a1
// stays locked forever — the simulation freezes.
func TestSIDRollbackAblation(t *testing.T) {
	// With the rollback: progress continues past the two scripted events.
	eng := buildStale(t, false)
	progressed, err := eng.RunUntil(func(pp.Configuration) bool {
		return totalEvents(eng) > 2
	}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !progressed {
		t.Fatal("with rollback: no simulated event after the stale scenario")
	}

	// Ablated: frozen forever.
	eng = buildStale(t, true)
	if err := eng.RunSteps(50000); err != nil {
		t.Fatal(err)
	}
	if got := totalEvents(eng); got != 2 {
		t.Fatalf("ablated: %d simulated events, want the simulation frozen at 2", got)
	}
	if eng.Config()[0].(*sim.SIDState).Mode() != sim.SIDPairing {
		t.Fatal("ablated: a0 escaped the stale pairing")
	}
	if eng.Config()[1].(*sim.SIDState).Mode() != sim.SIDLocked {
		t.Fatal("ablated: a1 escaped the stale lock")
	}
}
