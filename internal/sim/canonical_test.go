package sim

// The canonical-key property suite. It lives inside package sim (unlike the
// black-box *_test.go files) because the property under test is about the
// split between behavioral fields and instrumentation fields, which only
// this package can name: two wrapped states must intern to the same dense ID
// if and only if they are behaviorally indistinguishable — same mode,
// simulated state and token/pairing content — regardless of the
// verification-only provenance (origin, gen, tags, event caches) they
// accumulated along the way.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/verify"
)

// behavioralSig computes a state's behavioral signature through a second,
// independent encoding of the behavioral fields (it never calls Key or
// Token.Key, so a bug that leaks provenance into those encodings cannot hide
// here). It returns ok=false for non-wrapped states.
func behavioralSig(s pp.State) (string, bool) {
	switch a := s.(type) {
	case *SKnOState:
		toks := make([]string, len(a.sending))
		for i, t := range a.sending {
			toks[i] = fmt.Sprintf("%d/%s/%s/%d", t.Kind, stKey(t.Q), stKey(t.Via), t.Idx)
		}
		debts := make([]string, 0, len(a.debt))
		for k, v := range a.debt {
			debts = append(debts, fmt.Sprintf("%s=%d", k, v))
		}
		sort.Strings(debts)
		return fmt.Sprintf("skno|%d|%s|%s|%s",
			a.mode, stKey(a.sim), strings.Join(toks, ","), strings.Join(debts, ",")), true
	case *SIDState:
		return fmt.Sprintf("sid|%d|%s|%d|%d|%s",
			a.id, stKey(a.sim), a.mode, a.otherID, stKey(a.otherSim)), true
	case *NamingState:
		inner := ""
		if a.inner != nil {
			inner, _ = behavioralSig(a.inner)
		}
		return fmt.Sprintf("nam|%d|%d|%d|%s|%s",
			a.myID, a.maxID, a.n, stKey(a.sim), inner), true
	}
	return "", false
}

func stKey(s pp.State) string {
	if s == nil {
		return "<nil>"
	}
	return s.Key()
}

// scrambleProvenance returns a copy of s with every instrumentation field
// rewritten to junk — origins, generation counters, event caches, token tags,
// lock tags — leaving the behavioral fields untouched.
func scrambleProvenance(s pp.State, rng *rand.Rand) pp.State {
	junkEv := verify.Event{Seq: rng.Uint64(), Tag: "junk", Role: verify.SimStarter}
	switch a := s.(type) {
	case *SKnOState:
		cp := a.clone()
		cp.origin = rng.Intn(1 << 16)
		cp.gen = rng.Uint64()
		cp.lastEvent = junkEv
		for i := range cp.sending {
			if cp.sending[i].Kind == ChangeToken {
				cp.sending[i].Tag = fmt.Sprintf("junk%d", rng.Intn(100))
			}
		}
		return cp
	case *SIDState:
		cp := a.clone()
		cp.gen = rng.Uint64()
		cp.lastEvent = junkEv
		if cp.mode == SIDLocked {
			cp.lockTag = fmt.Sprintf("junk%d", rng.Intn(100))
		}
		return cp
	case *NamingState:
		cp := a.clone()
		if cp.inner != nil {
			cp.inner = scrambleProvenance(cp.inner, rng).(*SIDState)
		}
		return cp
	}
	return s
}

// mutateBehavior returns a copy of s with one behavioral field changed (the
// negative direction of the iff), or ok=false when the state offers no
// applicable mutation.
func mutateBehavior(s pp.State, rng *rand.Rand) (pp.State, bool) {
	switch a := s.(type) {
	case *SKnOState:
		cp := a.clone()
		switch rng.Intn(3) {
		case 0:
			if cp.mode == Available {
				cp.mode = Pending
			} else {
				cp.mode = Available
			}
		case 1:
			cp.sending = append(cp.sending, Token{Kind: JokerToken}.Memoized())
		default:
			if cp.debt == nil {
				cp.debt = make(map[string]int)
			}
			cp.debt["A:zz:1"]++
		}
		return cp, true
	case *SIDState:
		cp := a.clone()
		switch rng.Intn(2) {
		case 0:
			cp.id += 1000
		default:
			cp.otherID += 1000
		}
		return cp, true
	case *NamingState:
		cp := a.clone()
		if cp.inner != nil {
			inner, ok := mutateBehavior(cp.inner, rng)
			if !ok {
				return nil, false
			}
			cp.inner = inner.(*SIDState)
			return cp, true
		}
		cp.maxID++
		return cp, true
	}
	return nil, false
}

// history drives cfg through `steps` random IO/IT-style interactions of the
// one-way protocol ow (reactor reads the starter's pre-state; the starter
// then applies Detect), injecting reactor-side omissions at `omRate` when
// the protocol detects them. It returns every intermediate state it saw.
func history(ow pp.OneWay, cfg pp.Configuration, steps int, omRate float64, rng *rand.Rand) []pp.State {
	seen := make([]pp.State, 0, steps*2)
	n := len(cfg)
	roa, hasOm := ow.(pp.ReactorOmissionAware)
	for i := 0; i < steps; i++ {
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		if hasOm && rng.Float64() < omRate {
			cfg[b] = roa.OnReactorOmission(cfg[b])
		} else {
			pre := cfg[a]
			cfg[b] = ow.React(pre, cfg[b])
			cfg[a] = ow.Detect(pre)
		}
		seen = append(seen, cfg[a], cfg[b])
	}
	return seen
}

// TestCanonicalKeyIffBehavioral is the tentpole property: across random
// interaction histories of all three simulators, any two sampled wrapped
// states intern to the same dense ID iff their behavioral signatures agree —
// and every state keys identically to a provenance-scrambled copy of itself,
// while single behavioral mutations always change the key.
func TestCanonicalKeyIffBehavioral(t *testing.T) {
	cases := []struct {
		name   string
		ow     pp.OneWay
		cfg    func() pp.Configuration
		omRate float64
	}{
		{"skno-o0", SKnO{P: protocols.Pairing{}, O: 0},
			func() pp.Configuration { return SKnO{P: protocols.Pairing{}, O: 0}.WrapConfig(protocols.PairingConfig(3, 3)) }, 0},
		{"skno-o1", SKnO{P: protocols.Majority{}, O: 1},
			func() pp.Configuration { return SKnO{P: protocols.Majority{}, O: 1}.WrapConfig(protocols.MajorityConfig(3, 2)) }, 0.05},
		{"sid", SID{P: protocols.Majority{}},
			func() pp.Configuration { return SID{P: protocols.Majority{}}.WrapConfig(protocols.MajorityConfig(3, 3)) }, 0},
		{"naming", Naming{P: protocols.Or{}, N: 5},
			func() pp.Configuration { return Naming{P: protocols.Or{}, N: 5}.WrapConfig(protocols.OrConfig(5, 2)) }, 0},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				states := history(c.ow, c.cfg(), 400, c.omRate, rng)

				// Sample pairs: interned IDs must agree exactly when the
				// independent behavioral signatures agree.
				in := pp.NewInterner()
				type sample struct {
					id  uint32
					sig string
				}
				samples := make([]sample, 0, 200)
				for i := 0; i < 200 && i < len(states); i++ {
					s := states[rng.Intn(len(states))]
					sig, ok := behavioralSig(s)
					if !ok {
						t.Fatalf("non-wrapped state %T in history", s)
					}
					samples = append(samples, sample{id: in.Intern(s), sig: sig})
				}
				for i := 0; i < len(samples); i++ {
					for j := i + 1; j < len(samples); j++ {
						sameID := samples[i].id == samples[j].id
						sameSig := samples[i].sig == samples[j].sig
						if sameID != sameSig {
							t.Fatalf("seed %d: interned sameID=%v but sameSig=%v\nsig_i=%s\nsig_j=%s",
								seed, sameID, sameSig, samples[i].sig, samples[j].sig)
						}
					}
				}

				// Provenance invariance and behavioral sensitivity per state.
				for i := 0; i < 50; i++ {
					s := states[rng.Intn(len(states))]
					scr := scrambleProvenance(s, rng)
					if s.Key() != scr.Key() {
						t.Fatalf("seed %d: provenance leaked into Key:\n%s\n%s", seed, s.Key(), scr.Key())
					}
					if in.Intern(s) != in.Intern(scr) {
						t.Fatalf("seed %d: provenance variants interned differently", seed)
					}
					if mut, ok := mutateBehavior(s, rng); ok {
						if s.Key() == mut.Key() {
							t.Fatalf("seed %d: behavioral mutation left Key unchanged: %s", seed, s.Key())
						}
					}
				}
			}
		})
	}
}

// TestCanonicalMarkers: all three simulator state types declare the
// canonical-key contract, and Canonicalized accepts exactly configurations
// made of them (plus non-wrapped states).
func TestCanonicalMarkers(t *testing.T) {
	var (
		_ CanonicalKeyed = (*SKnOState)(nil)
		_ CanonicalKeyed = (*SIDState)(nil)
		_ CanonicalKeyed = (*NamingState)(nil)
	)
	skno := SKnO{P: protocols.Pairing{}, O: 1}
	cfg := skno.WrapConfig(protocols.PairingConfig(2, 2))
	if !Canonicalized(cfg) {
		t.Fatal("simulator configuration not recognized as canonical")
	}
	if !Canonicalized(protocols.PairingConfig(2, 2)) {
		t.Fatal("native configuration must be trivially canonical")
	}
	if Canonicalized(pp.Configuration{fakeWrapped{}}) {
		t.Fatal("non-canonical wrapped state accepted")
	}
}

// fakeWrapped is a Wrapped state without the canonical-key marker.
type fakeWrapped struct{}

func (fakeWrapped) Key() string             { return "fake" }
func (fakeWrapped) Simulated() pp.State     { return nil }
func (fakeWrapped) EventSeq() uint64        { return 0 }
func (fakeWrapped) LastEvent() verify.Event { return verify.Event{} }
