package pp_test

import (
	"testing"

	"popsim/internal/pp"
)

func TestInternerDenseIDs(t *testing.T) {
	in := pp.NewInterner()
	a := in.Intern(pp.Symbol("a"))
	b := in.Intern(pp.Symbol("b"))
	if a != 0 || b != 1 {
		t.Fatalf("IDs not dense-from-zero: a=%d b=%d", a, b)
	}
	if got := in.Intern(pp.Symbol("a")); got != a {
		t.Fatalf("re-intern of equal state: got %d want %d", got, a)
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
	if !pp.Equal(in.State(a), pp.Symbol("a")) || !pp.Equal(in.State(b), pp.Symbol("b")) {
		t.Fatal("State roundtrip broken")
	}
}

func TestInternerCanonicalRepresentative(t *testing.T) {
	// Two distinct values with equal keys intern to the same ID, and the
	// first one seen stays the representative.
	in := pp.NewInterner()
	first := pp.Symbol("x")
	id := in.Intern(first)
	if got := in.Intern(pp.Symbol("x")); got != id {
		t.Fatalf("equal-key states got different IDs: %d vs %d", got, id)
	}
	if in.State(id) != pp.State(first) {
		t.Fatal("representative is not the first-interned state")
	}
}

func TestInternerConfigRoundtrip(t *testing.T) {
	in := pp.NewInterner()
	cfg := pp.Configuration{pp.Symbol("a"), pp.Symbol("b"), pp.Symbol("a")}
	ids := in.InternConfig(cfg, nil)
	if len(ids) != 3 || ids[0] != ids[2] || ids[0] == ids[1] {
		t.Fatalf("unexpected IDs %v", ids)
	}
	out := in.Materialize(ids, nil)
	if out.Key() != cfg.Key() {
		t.Fatalf("roundtrip key mismatch: %q vs %q", out.Key(), cfg.Key())
	}
	// Materialize into a reusable buffer.
	buf := make(pp.Configuration, 3)
	out2 := in.Materialize(ids, buf)
	if &out2[0] != &buf[0] {
		t.Fatal("Materialize did not reuse the buffer")
	}
}
