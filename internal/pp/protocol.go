package pp

// TwoWay is a standard two-way population protocol (model TW, Section 2.2).
//
// Delta is the transition function δP : QP × QP → QP × QP. It is applied to
// the ordered pair (starter, reactor) and returns their new states in the
// same order. Delta must be deterministic and must not mutate its arguments.
type TwoWay interface {
	// Name identifies the protocol in traces and reports.
	Name() string
	// Delta returns (fs(s, r), fr(s, r)).
	Delta(starter, reactor State) (State, State)
}

// OneWay is a one-way protocol (models IT and IO, Section 2.2).
//
// In a non-omissive one-way interaction the reactor becomes React(s, r) and
// the starter becomes Detect(s). In the Immediate Observation model (IO),
// Detect must be the identity; the model layer enforces this regardless of
// the protocol's implementation.
type OneWay interface {
	// Name identifies the protocol in traces and reports.
	Name() string
	// React is f : QP × QP → QP, the reactor's update. The reactor
	// observes both its own state and the starter's state.
	React(starter, reactor State) State
	// Detect is g : QP → QP, the starter's update upon detecting the
	// proximity of a reactor. The starter does not see the reactor's
	// state.
	Detect(starter State) State
}

// StarterOmissionAware is implemented by protocols that can detect an
// omission on the starter's side (the function o of Section 2.3). Models in
// which starter-side omissions are undetectable force the identity instead.
type StarterOmissionAware interface {
	// OnStarterOmission is o : QP → QP.
	OnStarterOmission(starter State) State
}

// ReactorOmissionAware is implemented by protocols that can detect an
// omission on the reactor's side (the function h of Section 2.3). Models in
// which reactor-side omissions are undetectable force the identity instead.
type ReactorOmissionAware interface {
	// OnReactorOmission is h : QP → QP.
	OnReactorOmission(reactor State) State
}

// Initializer is an optional protocol extension that produces the initial
// state of agent i in a population of n agents. Protocols whose initial
// states encode knowledge (unique IDs, knowledge of n — Section 2.1 "Initial
// Knowledge") implement this; simple protocols are usually initialized
// explicitly by the caller instead.
type Initializer interface {
	InitialState(agent, n int) State
}

// Outputter is an optional protocol extension mapping each state to an
// output value, used by predicate-computing protocols (e.g. majority).
type Outputter interface {
	Output(State) string
}

// OneWayAdapter lifts a TwoWay protocol into a OneWay protocol by using only
// the reactor side of δ: React(s, r) = δ(s, r)[1] and Detect = identity.
// This is the standard embedding of IO-runnable logic and is used by
// simulators whose own protocol logic is naturally one-way.
type OneWayAdapter struct {
	P TwoWay
}

var _ OneWay = OneWayAdapter{}

// Name implements OneWay.
func (a OneWayAdapter) Name() string { return a.P.Name() + "/one-way" }

// React implements OneWay using the reactor side of the wrapped δ.
func (a OneWayAdapter) React(starter, reactor State) State {
	_, r := a.P.Delta(starter, reactor)
	return r
}

// Detect implements OneWay as the identity.
func (a OneWayAdapter) Detect(starter State) State { return starter }

// TwoWayEmbed lifts a OneWay protocol into a TwoWay protocol by the standard
// embedding fs(as, ar) = g(as), fr(as, ar) = f(as, ar) (Figure 1: IT is TW
// with fs depending only on as).
//
// Omission hooks: the starter of a one-way protocol receives nothing, so a
// two-way omission on the starter's side (the reverse channel) is irrelevant
// to it — it must behave exactly as on success, i.e. apply g. It must *not*
// use an I4-style starter hook: that hook assumes the forward transmission
// was lost, but in a T3 starter-side omission the forward delivery
// succeeded, and acting on the wrong assumption duplicates protocol state
// (for token protocols, duplicated tokens break safety). The reactor-side
// hook h carries over verbatim: a two-way reactor-side omission is exactly a
// lost forward transmission, the I3 situation.
//
// The embedding lets one-way simulators (SKnO, SID) run under the two-way
// omissive models T1, T2, T3, realizing the Figure-1 inclusions I3 → T3 and
// I4 → T3 operationally.
type TwoWayEmbed struct {
	OW OneWay
}

var (
	_ TwoWay               = TwoWayEmbed{}
	_ StarterOmissionAware = TwoWayEmbed{}
	_ ReactorOmissionAware = TwoWayEmbed{}
)

// Name implements TwoWay.
func (e TwoWayEmbed) Name() string { return e.OW.Name() + "/two-way" }

// Delta implements TwoWay.
func (e TwoWayEmbed) Delta(starter, reactor State) (State, State) {
	return e.OW.Detect(starter), e.OW.React(starter, reactor)
}

// OnStarterOmission implements StarterOmissionAware: always g (see the type
// comment for why the one-way starter hook must not be used here).
func (e TwoWayEmbed) OnStarterOmission(starter State) State {
	return e.OW.Detect(starter)
}

// OnReactorOmission implements ReactorOmissionAware.
func (e TwoWayEmbed) OnReactorOmission(reactor State) State {
	if d, ok := e.OW.(ReactorOmissionAware); ok {
		return d.OnReactorOmission(reactor)
	}
	return reactor
}

// Func is a convenience TwoWay implementation backed by a function.
type Func struct {
	ProtocolName string
	Transition   func(starter, reactor State) (State, State)
}

var _ TwoWay = Func{}

// Name implements TwoWay.
func (f Func) Name() string { return f.ProtocolName }

// Delta implements TwoWay.
func (f Func) Delta(starter, reactor State) (State, State) {
	return f.Transition(starter, reactor)
}
