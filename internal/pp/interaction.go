package pp

import (
	"fmt"
	"strconv"
	"strings"
)

// OmissionSide says which side(s) of an interaction lost the transmitted
// information (Section 2.3). In an omissive interaction an agent receives no
// information about the state of its counterpart.
type OmissionSide int

// Omission sides. OmissionNone is the zero value: a fully successful
// interaction.
const (
	// OmissionNone: no omission; the interaction is fully delivered.
	OmissionNone OmissionSide = iota
	// OmissionStarter: the starter did not receive the reactor's state.
	OmissionStarter
	// OmissionReactor: the reactor did not receive the starter's state.
	OmissionReactor
	// OmissionBoth: both transmissions were lost.
	OmissionBoth
)

// String renders the omission side.
func (o OmissionSide) String() string {
	switch o {
	case OmissionNone:
		return "none"
	case OmissionStarter:
		return "starter"
	case OmissionReactor:
		return "reactor"
	case OmissionBoth:
		return "both"
	default:
		return fmt.Sprintf("OmissionSide(%d)", int(o))
	}
}

// StarterOmitted reports whether the starter's incoming information was lost.
func (o OmissionSide) StarterOmitted() bool {
	return o == OmissionStarter || o == OmissionBoth
}

// ReactorOmitted reports whether the reactor's incoming information was lost.
func (o OmissionSide) ReactorOmitted() bool {
	return o == OmissionReactor || o == OmissionBoth
}

// IsOmissive reports whether the interaction carries any omission at all.
func (o OmissionSide) IsOmissive() bool { return o != OmissionNone }

// Interaction is one ordered meeting of two agents, possibly degraded by an
// omission fault. Starter and Reactor are agent indices into the
// configuration.
type Interaction struct {
	Starter  int
	Reactor  int
	Omission OmissionSide
}

// Valid reports whether the interaction references two distinct, non-negative
// agent indices below n.
func (i Interaction) Valid(n int) bool {
	return i.Starter != i.Reactor &&
		i.Starter >= 0 && i.Starter < n &&
		i.Reactor >= 0 && i.Reactor < n
}

// String renders the interaction, e.g. "(3,7)" or "(3,7)!reactor".
func (i Interaction) String() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(strconv.Itoa(i.Starter))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(i.Reactor))
	b.WriteByte(')')
	if i.Omission != OmissionNone {
		b.WriteByte('!')
		b.WriteString(i.Omission.String())
	}
	return b.String()
}

// Run is a (finite prefix of a) sequence of interactions. The paper's runs
// are infinite; executables work with finite prefixes and extend them on
// demand.
type Run []Interaction

// Omissions returns O(I): the number of omissive interactions in the run.
func (r Run) Omissions() int {
	n := 0
	for _, i := range r {
		if i.Omission.IsOmissive() {
			n++
		}
	}
	return n
}

// Clone returns a copy of the run.
func (r Run) Clone() Run {
	out := make(Run, len(r))
	copy(out, r)
	return out
}

// String renders the run compactly.
func (r Run) String() string {
	parts := make([]string, len(r))
	for i, it := range r {
		parts[i] = it.String()
	}
	return strings.Join(parts, " ")
}
