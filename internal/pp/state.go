// Package pp defines the core notions of the Population Protocol (PP) model
// of Angluin et al. as used in Di Luna et al., "On the Power of Weaker
// Pairwise Interaction: Fault-Tolerant Simulation of Population Protocols"
// (ICDCS 2017): agents, states, configurations, two-way protocols, one-way
// protocols, and omission-detection hooks.
//
// A system is a population of n anonymous agents. When two agents meet, an
// ordered interaction (starter, reactor) occurs and their states change
// according to the protocol's transition function. All state values are
// treated as immutable: transition functions must return fresh values and
// never mutate their arguments.
package pp

import (
	"fmt"
	"sort"
	"strings"
)

// State is an opaque, immutable agent state.
//
// Implementations must provide a canonical Key: two states are considered
// equal if and only if their Keys are equal. Keys are used for hashing,
// configuration comparison, and closed-set membership.
type State interface {
	// Key returns a canonical, deterministic encoding of the state.
	Key() string
}

// Equal reports whether two states are equal under the canonical Key
// encoding. A nil state is only equal to another nil state.
func Equal(a, b State) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Key() == b.Key()
}

// Symbol is the simplest State implementation: a named constant state, such
// as "c", "p" or "leader". It is the natural representation for the
// constant-size state spaces of classical population protocols.
type Symbol string

// Key implements State.
func (s Symbol) Key() string { return string(s) }

// String returns the symbol itself.
func (s Symbol) String() string { return string(s) }

var _ State = Symbol("")

// Configuration is the tuple of the states of all agents, indexed by agent.
// Agents are anonymous: indices exist only so that runs can reference the
// participants of an interaction.
type Configuration []State

// Clone returns a deep copy of the configuration slice. The State values
// themselves are immutable and therefore shared.
func (c Configuration) Clone() Configuration {
	out := make(Configuration, len(c))
	copy(out, c)
	return out
}

// Key returns a canonical encoding of the ordered configuration.
func (c Configuration) Key() string {
	var b strings.Builder
	size := len(c) // separators
	for _, s := range c {
		if s == nil {
			size += len("<nil>")
			continue
		}
		size += len(s.Key())
	}
	b.Grow(size)
	for i, s := range c {
		if i > 0 {
			b.WriteByte('|')
		}
		if s == nil {
			b.WriteString("<nil>")
			continue
		}
		b.WriteString(s.Key())
	}
	return b.String()
}

// MultisetKey returns a canonical encoding of the configuration viewed as a
// multiset of states, i.e. invariant under permutation of the agents. Closed
// sets of configurations (Section 2.1 of the paper) are permutation-closed,
// so multiset keys are the right granularity for fairness bookkeeping.
func (c Configuration) MultisetKey() string {
	keys := make([]string, len(c))
	for i, s := range c {
		if s == nil {
			keys[i] = "<nil>"
			continue
		}
		keys[i] = s.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// Count returns how many agents of the configuration are in the given state.
func (c Configuration) Count(s State) int {
	n := 0
	key := s.Key()
	for _, st := range c {
		if st != nil && st.Key() == key {
			n++
		}
	}
	return n
}

// CountFunc returns how many agents satisfy the predicate.
func (c Configuration) CountFunc(pred func(State) bool) int {
	n := 0
	for _, st := range c {
		if st != nil && pred(st) {
			n++
		}
	}
	return n
}

// String renders the configuration for debugging.
func (c Configuration) String() string {
	return fmt.Sprintf("(%s)", c.Key())
}
