package pp_test

import (
	"testing"

	"popsim/internal/pp"
)

func TestCountConfigRoundTrip(t *testing.T) {
	cfg := pp.Configuration{
		pp.Symbol("a"), pp.Symbol("b"), pp.Symbol("a"),
		pp.Symbol("c"), pp.Symbol("a"), pp.Symbol("b"),
	}
	in := pp.NewInterner()
	counts := in.CountConfig(cfg, nil)
	if got := counts.N(); got != int64(len(cfg)) {
		t.Fatalf("N = %d, want %d", got, len(cfg))
	}
	if len(counts) != in.Len() {
		t.Fatalf("len(counts) = %d, want interner len %d", len(counts), in.Len())
	}
	ida, _ := in.Lookup(pp.Symbol("a"))
	idb, _ := in.Lookup(pp.Symbol("b"))
	idc, _ := in.Lookup(pp.Symbol("c"))
	if counts[ida] != 3 || counts[idb] != 2 || counts[idc] != 1 {
		t.Fatalf("counts = %v (a=%d b=%d c=%d)", counts, ida, idb, idc)
	}
	back := in.MaterializeCounts(counts, nil)
	if back.MultisetKey() != cfg.MultisetKey() {
		t.Fatalf("materialized multiset %q != original %q", back.MultisetKey(), cfg.MultisetKey())
	}
}

func TestCountIDsMatchesCountConfig(t *testing.T) {
	cfg := pp.Configuration{pp.Symbol("x"), pp.Symbol("y"), pp.Symbol("x")}
	in := pp.NewInterner()
	ids := in.InternConfig(cfg, nil)
	fromIDs := pp.CountIDs(ids, in.Len(), nil)
	fromCfg := in.CountConfig(cfg, nil)
	if !fromIDs.Equal(fromCfg) {
		t.Fatalf("CountIDs %v != CountConfig %v", fromIDs, fromCfg)
	}
}

func TestCountsEqualIgnoresTrailingZeros(t *testing.T) {
	a := pp.Counts{2, 1}
	b := pp.Counts{2, 1, 0, 0}
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("trailing zeros must not affect equality")
	}
	c := pp.Counts{2, 1, 1}
	if a.Equal(c) || c.Equal(a) {
		t.Fatal("distinct multisets compared equal")
	}
}

func TestCountsCloneIsDetached(t *testing.T) {
	a := pp.Counts{5, 3}
	b := a.Clone()
	b[0] = 99
	if a[0] != 5 {
		t.Fatal("Clone aliases the original")
	}
}

func TestLookupDoesNotAllocateIDs(t *testing.T) {
	in := pp.NewInterner()
	if _, ok := in.Lookup(pp.Symbol("zzz")); ok {
		t.Fatal("Lookup invented an ID")
	}
	if in.Len() != 0 {
		t.Fatal("Lookup must not intern")
	}
	id := in.Intern(pp.Symbol("zzz"))
	got, ok := in.Lookup(pp.Symbol("zzz"))
	if !ok || got != id {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", got, ok, id)
	}
}
