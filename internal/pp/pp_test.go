package pp_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"popsim/internal/pp"
)

func TestSymbolKey(t *testing.T) {
	if pp.Symbol("c").Key() != "c" {
		t.Errorf("Symbol key mismatch")
	}
	if pp.Symbol("c").String() != "c" {
		t.Errorf("Symbol string mismatch")
	}
}

func TestEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b pp.State
		want bool
	}{
		{"same symbol", pp.Symbol("x"), pp.Symbol("x"), true},
		{"different symbols", pp.Symbol("x"), pp.Symbol("y"), false},
		{"nil vs nil", nil, nil, true},
		{"nil vs state", nil, pp.Symbol("x"), false},
		{"state vs nil", pp.Symbol("x"), nil, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := pp.Equal(tc.a, tc.b); got != tc.want {
				t.Errorf("Equal(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestConfigurationClone(t *testing.T) {
	c := pp.Configuration{pp.Symbol("a"), pp.Symbol("b")}
	d := c.Clone()
	d[0] = pp.Symbol("z")
	if c[0].Key() != "a" {
		t.Error("Clone shares backing array")
	}
}

func TestConfigurationKeys(t *testing.T) {
	c := pp.Configuration{pp.Symbol("b"), pp.Symbol("a")}
	if got, want := c.Key(), "b|a"; got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
	if got, want := c.MultisetKey(), "a|b"; got != want {
		t.Errorf("MultisetKey = %q, want %q", got, want)
	}
}

// TestMultisetKeyPermutationInvariant: the multiset key must be invariant
// under any permutation of the agents (closed sets of Section 2.1 are
// permutation-closed).
func TestMultisetKeyPermutationInvariant(t *testing.T) {
	f := func(raw []byte, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		cfg := make(pp.Configuration, len(raw))
		for i, b := range raw {
			cfg[i] = pp.Symbol(string(rune('a' + int(b)%4)))
		}
		perm := cfg.Clone()
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		return cfg.MultisetKey() == perm.MultisetKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigurationCount(t *testing.T) {
	c := pp.Configuration{pp.Symbol("a"), pp.Symbol("b"), pp.Symbol("a")}
	if got := c.Count(pp.Symbol("a")); got != 2 {
		t.Errorf("Count(a) = %d, want 2", got)
	}
	if got := c.CountFunc(func(s pp.State) bool { return s.Key() != "a" }); got != 1 {
		t.Errorf("CountFunc = %d, want 1", got)
	}
}

func TestOmissionSide(t *testing.T) {
	tests := []struct {
		side             pp.OmissionSide
		starter, reactor bool
		str              string
	}{
		{pp.OmissionNone, false, false, "none"},
		{pp.OmissionStarter, true, false, "starter"},
		{pp.OmissionReactor, false, true, "reactor"},
		{pp.OmissionBoth, true, true, "both"},
	}
	for _, tc := range tests {
		if tc.side.StarterOmitted() != tc.starter {
			t.Errorf("%v StarterOmitted = %v", tc.side, tc.side.StarterOmitted())
		}
		if tc.side.ReactorOmitted() != tc.reactor {
			t.Errorf("%v ReactorOmitted = %v", tc.side, tc.side.ReactorOmitted())
		}
		if tc.side.String() != tc.str {
			t.Errorf("%v String = %q, want %q", tc.side, tc.side.String(), tc.str)
		}
		if tc.side.IsOmissive() != (tc.starter || tc.reactor) {
			t.Errorf("%v IsOmissive inconsistent", tc.side)
		}
	}
}

func TestInteractionValid(t *testing.T) {
	tests := []struct {
		it   pp.Interaction
		n    int
		want bool
	}{
		{pp.Interaction{Starter: 0, Reactor: 1}, 2, true},
		{pp.Interaction{Starter: 1, Reactor: 0}, 2, true},
		{pp.Interaction{Starter: 0, Reactor: 0}, 2, false},
		{pp.Interaction{Starter: 0, Reactor: 2}, 2, false},
		{pp.Interaction{Starter: -1, Reactor: 1}, 2, false},
	}
	for _, tc := range tests {
		if got := tc.it.Valid(tc.n); got != tc.want {
			t.Errorf("%v.Valid(%d) = %v, want %v", tc.it, tc.n, got, tc.want)
		}
	}
}

func TestInteractionString(t *testing.T) {
	it := pp.Interaction{Starter: 3, Reactor: 7}
	if got := it.String(); got != "(3,7)" {
		t.Errorf("String = %q", got)
	}
	it.Omission = pp.OmissionReactor
	if got := it.String(); got != "(3,7)!reactor" {
		t.Errorf("String = %q", got)
	}
}

func TestRunOmissions(t *testing.T) {
	r := pp.Run{
		{Starter: 0, Reactor: 1},
		{Starter: 1, Reactor: 0, Omission: pp.OmissionBoth},
		{Starter: 0, Reactor: 1, Omission: pp.OmissionStarter},
	}
	if got := r.Omissions(); got != 2 {
		t.Errorf("Omissions = %d, want 2", got)
	}
	cl := r.Clone()
	cl[0].Starter = 9
	if r[0].Starter != 0 {
		t.Error("Clone shares backing array")
	}
}

func TestOneWayAdapter(t *testing.T) {
	p := pp.Func{
		ProtocolName: "swap",
		Transition: func(s, r pp.State) (pp.State, pp.State) {
			return r, s
		},
	}
	a := pp.OneWayAdapter{P: p}
	if got := a.React(pp.Symbol("x"), pp.Symbol("y")); got.Key() != "x" {
		t.Errorf("React = %v, want x", got)
	}
	if got := a.Detect(pp.Symbol("x")); got.Key() != "x" {
		t.Errorf("Detect must be identity, got %v", got)
	}
	if a.Name() != "swap/one-way" {
		t.Errorf("Name = %q", a.Name())
	}
}
