package pp

// Counts is the configuration-vector representation of a population: entry q
// is the number of agents currently in the state with interned ID q (see
// Interner). It is the O(|Q|) counterpart of the O(n) dense ID vector —
// agents are anonymous and the uniform-random scheduler treats them as
// exchangeable, so the multiset of states carries exactly the information any
// symmetric observation (count predicates, multiset comparison, convergence
// checks) can use, in |Q| machine words instead of n.
//
// The counts-based execution backend (engine.CountEngine) runs entirely on
// this representation: stepping applies transitions as count deltas and
// observation never materializes per-agent state. Entries beyond the IDs a
// configuration actually uses are zero; the slice length tracks the owning
// interner's Len and grows as transitions mint new states.
type Counts []int64

// N returns the population size, i.e. the sum of all counts.
func (c Counts) N() int64 {
	var n int64
	for _, v := range c {
		n += v
	}
	return n
}

// Clone returns a copy of the counts vector.
func (c Counts) Clone() Counts {
	out := make(Counts, len(c))
	copy(out, c)
	return out
}

// Equal reports whether two counts vectors describe the same multiset of
// states (trailing zero entries are insignificant: the vectors may belong to
// interners that have seen different numbers of states).
func (c Counts) Equal(d Counts) bool {
	long, short := c, d
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, v := range short {
		if long[i] != v {
			return false
		}
	}
	for _, v := range long[len(short):] {
		if v != 0 {
			return false
		}
	}
	return true
}

// CountIDs accumulates the dense ID vector ids into a counts vector of at
// least `states` entries (reusing dst when it is large enough). IDs at or
// beyond `states` extend the vector.
func CountIDs(ids []uint32, states int, dst Counts) Counts {
	if cap(dst) < states {
		dst = make(Counts, states)
	}
	dst = dst[:cap(dst)]
	for i := range dst {
		dst[i] = 0
	}
	dst = dst[:states]
	for _, id := range ids {
		for int(id) >= len(dst) {
			dst = append(dst, 0)
		}
		dst[id]++
	}
	return dst
}

// CountConfig interns every state of cfg and returns the counts vector of the
// configuration (reusing dst when it is large enough), sized to the
// interner's Len afterwards.
func (in *Interner) CountConfig(cfg Configuration, dst Counts) Counts {
	if cap(dst) < len(in.states) {
		dst = make(Counts, len(in.states))
	}
	dst = dst[:cap(dst)]
	for i := range dst {
		dst[i] = 0
	}
	dst = dst[:0]
	for _, s := range cfg {
		id := in.Intern(s)
		for int(id) >= len(dst) {
			dst = append(dst, 0)
		}
		dst[id]++
	}
	for len(dst) < len(in.states) {
		dst = append(dst, 0)
	}
	return dst
}

// MaterializeCounts expands a counts vector into a full configuration of
// canonical representatives, in state-ID order (reusing dst when it is large
// enough). Like every counts-level observation it is multiset-exact only:
// agent positions are synthetic. Use it at observation boundaries that
// genuinely need per-agent states; O(|Q|) consumers should stay on the counts
// vector itself.
func (in *Interner) MaterializeCounts(c Counts, dst Configuration) Configuration {
	n := int(c.N())
	if cap(dst) < n {
		dst = make(Configuration, 0, n)
	}
	dst = dst[:0]
	for id, cnt := range c {
		s := in.states[id]
		for k := int64(0); k < cnt; k++ {
			dst = append(dst, s)
		}
	}
	return dst
}

// Lookup returns the dense ID previously assigned to a state with s's
// canonical key, without allocating a new one.
func (in *Interner) Lookup(s State) (uint32, bool) {
	id, ok := in.ids[s.Key()]
	return id, ok
}
