package pp

// Interner assigns dense uint32 identifiers to states, keyed by their
// canonical Key encoding: two states receive the same ID if and only if they
// are Equal. Dense IDs let hot paths (the engine's batched stepping, the
// transition cache of package model) replace repeated Key construction and
// string comparison with integer indexing.
//
// The contract this relies on is that Key is *behavioral*: it encodes
// exactly what the protocol's transition functions read, and nothing else.
// States that differ only in side-channel bookkeeping (provenance, event
// caches, memoized encodings) must share a key — the canonical
// representative stored for an ID stands in for every such variant, so any
// non-behavioral field on a materialized state is meaningful only as a
// debugging aid. The simulator wrappers declare this contract explicitly
// (sim.CanonicalKeyed); execution paths refuse to intern wrapped states
// that don't.
//
// IDs are allocated in first-sight order starting at 0 and are never
// reclaimed, so an Interner's memory grows with the number of *distinct*
// states it has seen — bounded for finite-state protocols, plateauing for
// canonically keyed simulator wrappers (a long tail of rare queue/pairing
// contents over a small hot set; callers bound the fast path themselves,
// see engine.StepBatch). Not safe for concurrent use.
type Interner struct {
	ids    map[string]uint32
	states []State
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint32, 64)}
}

// Intern returns the dense ID for s, allocating a fresh one on first sight.
// The first state interned with a given key becomes the canonical
// representative returned by State.
func (in *Interner) Intern(s State) uint32 {
	k := s.Key()
	if id, ok := in.ids[k]; ok {
		return id
	}
	id := uint32(len(in.states))
	in.ids[k] = id
	in.states = append(in.states, s)
	return id
}

// State returns the canonical representative for id. It panics for IDs never
// returned by Intern.
func (in *Interner) State(id uint32) State { return in.states[id] }

// Len returns the number of distinct states interned so far.
func (in *Interner) Len() int { return len(in.states) }

// InternConfig appends the dense IDs of c's states to dst and returns the
// extended slice.
func (in *Interner) InternConfig(c Configuration, dst []uint32) []uint32 {
	for _, s := range c {
		dst = append(dst, in.Intern(s))
	}
	return dst
}

// Materialize writes the canonical states behind ids into dst (allocating if
// dst is too short) and returns it.
func (in *Interner) Materialize(ids []uint32, dst Configuration) Configuration {
	if cap(dst) < len(ids) {
		dst = make(Configuration, len(ids))
	}
	dst = dst[:len(ids)]
	for i, id := range ids {
		dst[i] = in.states[id]
	}
	return dst
}
