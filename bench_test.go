// Benchmarks regenerating the quantitative side of every experiment in
// DESIGN.md §3. Each benchmark reports, besides ns/op, the domain metrics
// the paper's results are about: physical interactions per simulated
// two-way interaction (the wrapper overhead of Section 4) and simulator
// memory per agent (the Θ(·) bounds of Theorem 4.1 / Corollary 1).
package popsim_test

import (
	"context"
	"fmt"
	"testing"

	"popsim"
	"popsim/internal/adversary"
	"popsim/internal/engine"
	"popsim/internal/experiments"
	"popsim/internal/model"
	"popsim/internal/par"
	"popsim/internal/pp"
	"popsim/internal/protocols"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
	"popsim/internal/verify"
)

// BenchmarkFig1Hierarchy re-checks every inclusion edge of Figure 1.
func BenchmarkFig1Hierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(experiments.Config{Seed: 1, Quick: true})
		if err != nil || !res.Pass {
			b.Fatalf("fig1: pass=%v err=%v", res != nil && res.Pass, err)
		}
	}
}

// BenchmarkThm31Construction builds and executes the Lemma-1 run I* against
// SKnO(o=1) — the full impossibility pipeline (FTT search, Ik assembly, I*
// execution, safety check).
func BenchmarkThm31Construction(b *testing.B) {
	p := protocols.Pairing{}
	for i := 0; i < b.N; i++ {
		s := sim.SKnO{P: p, O: 1}
		v := adversary.Victim{
			Name: s.Name(), Model: model.I3, Protocol: s,
			Wrap:    func(st pp.State, origin int) pp.State { return s.Wrap(st, origin) },
			Project: func(st pp.State) pp.State { return st.(sim.Wrapped).Simulated() },
		}
		l1, err := v.BuildLemma1(protocols.Producer, protocols.Consumer, p.Delta, 99, 40, 6000)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := engine.New(model.I3, s, l1.InitialConfig(v, protocols.Producer, protocols.Consumer),
			sched.NewScript(l1.IStar, nil))
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.RunSteps(len(l1.IStar)); err != nil {
			b.Fatal(err)
		}
		if protocols.PairingSafe(sim.Project(eng.Config()), l1.FTT) {
			b.Fatal("expected safety violation")
		}
	}
}

// BenchmarkThm32StallProbe measures the single-omission stall probe in the
// weak models.
func BenchmarkThm32StallProbe(b *testing.B) {
	p := protocols.Pairing{}
	for _, kind := range []model.Kind{model.I1, model.I2} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sim.SKnO{P: p, O: 1}
				v := adversary.Victim{
					Name: s.Name(), Model: kind, Protocol: s,
					Wrap:    func(st pp.State, origin int) pp.State { return s.Wrap(st, origin) },
					Project: func(st pp.State) pp.State { return st.(sim.Wrapped).Simulated() },
				}
				rep, err := v.StallProbe(protocols.Producer, protocols.Consumer, p.Delta, 0, 3, 40, 5000)
				if err != nil || !rep.Stalled {
					b.Fatalf("stall expected: %+v err=%v", rep, err)
				}
			}
		})
	}
}

// benchSimulated runs a simulator to convergence and reports phys/sim and
// bytes/agent metrics.
func benchSimulated(b *testing.B, kind model.Kind, protocol any, wrap func() pp.Configuration,
	simCfg pp.Configuration, delta verify.DeltaFunc, adv func() adversary.Adversary,
	done func(pp.Configuration) bool) {
	b.Helper()
	var steps, pairs, mem int
	for i := 0; i < b.N; i++ {
		rec := &trace.Recorder{}
		opts := []engine.Option{engine.WithRecorder(rec)}
		if adv != nil {
			opts = append(opts, engine.WithAdversary(adv()))
		}
		eng, err := engine.New(kind, protocol, wrap(), sched.NewRandom(int64(i+1)), opts...)
		if err != nil {
			b.Fatal(err)
		}
		ok, err := eng.RunUntil(func(c pp.Configuration) bool { return done(sim.Project(c)) }, 5_000_000)
		if err != nil || !ok {
			b.Fatalf("convergence: ok=%v err=%v", ok, err)
		}
		rep := verify.Verify(rec.Events(), simCfg, delta)
		if err := rep.Err(); err != nil {
			b.Fatal(err)
		}
		steps += rec.Steps()
		pairs += len(rep.Pairs)
		for _, st := range eng.Config() {
			mem += sim.StateMemory(st)
		}
	}
	if pairs > 0 {
		b.ReportMetric(float64(steps)/float64(pairs), "phys/sim")
	}
	b.ReportMetric(float64(mem)/float64(b.N*len(simCfg)), "B/agent")
}

// BenchmarkSKnO reproduces the Theorem 4.1 overhead: physical interactions
// per simulated transition as a function of the omission bound o.
func BenchmarkSKnO(b *testing.B) {
	for _, o := range []int{0, 1, 2, 4} {
		o := o
		b.Run(fmt.Sprintf("I3/o=%d", o), func(b *testing.B) {
			p := protocols.Pairing{}
			simCfg := protocols.PairingConfig(2, 2)
			s := sim.SKnO{P: p, O: o}
			var adv func() adversary.Adversary
			if o > 0 {
				adv = func() adversary.Adversary { return adversary.NewBudgeted(7, 0.02, o) }
			}
			benchSimulated(b, model.I3, s, func() pp.Configuration { return s.WrapConfig(simCfg) },
				simCfg, p.Delta, adv,
				func(c pp.Configuration) bool { return protocols.PairingDone(c, 2, 2) })
		})
	}
}

// BenchmarkCor1Memory reproduces Corollary 1's memory regime: SKnO(o=0)
// under IT, per-agent bytes as n grows.
func BenchmarkCor1Memory(b *testing.B) {
	for _, n := range []int{4, 16, 32} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := protocols.LeaderElection{}
			simCfg := protocols.LeaderConfig(n)
			s := sim.SKnO{P: p, O: 0}
			benchSimulated(b, model.IT, s, func() pp.Configuration { return s.WrapConfig(simCfg) },
				simCfg, p.Delta, nil, protocols.LeaderElected)
		})
	}
}

// BenchmarkSID reproduces the Theorem 4.5 locking overhead as n grows.
func BenchmarkSID(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := protocols.Majority{}
			simCfg := protocols.MajorityConfig(n/2+1, n-n/2-1)
			s := sim.SID{P: p}
			benchSimulated(b, model.IO, s, func() pp.Configuration { return s.WrapConfig(simCfg) },
				simCfg, p.Delta, nil,
				func(c pp.Configuration) bool { return protocols.MajorityConverged(c, "A") })
		})
	}
}

// BenchmarkNaming reproduces the Theorem 4.6 naming convergence (Lemma 3) as
// n grows: interactions until every agent has started simulating.
func BenchmarkNaming(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var total int
			for i := 0; i < b.N; i++ {
				s := sim.Naming{P: protocols.Or{}, N: n}
				simCfg := protocols.OrConfig(n, 1)
				eng, err := engine.New(model.IO, s, s.WrapConfig(simCfg), sched.NewRandom(int64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				ok, err := eng.RunUntil(func(c pp.Configuration) bool {
					for _, st := range c {
						if ns, k := st.(*sim.NamingState); !k || !ns.Started() {
							return false
						}
					}
					return true
				}, 4000*n*n)
				if err != nil || !ok {
					b.Fatalf("naming: ok=%v err=%v", ok, err)
				}
				total += eng.Steps()
			}
			b.ReportMetric(float64(total)/float64(b.N), "interactions")
		})
	}
}

// BenchmarkFig4Map regenerates the full Figure-4 map with its empirical
// backing runs.
func BenchmarkFig4Map(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(experiments.Config{Seed: int64(i + 1), Quick: true})
		if err != nil || !res.Pass {
			b.Fatalf("fig4: pass=%v err=%v", res != nil && res.Pass, err)
		}
	}
}

// BenchmarkEngineThroughput measures raw interactions per second of the
// engine on the native majority protocol.
func BenchmarkEngineThroughput(b *testing.B) {
	cfgs := protocols.MajorityConfig(32, 32)
	eng, err := engine.New(model.TW, protocols.Majority{}, cfgs, sched.NewRandom(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughputBatch measures the interned-state batched fast
// path (StepBatch) on the same workload as BenchmarkEngineThroughput: same
// protocol, population, model and seed — and, by the batching contract, the
// exact same interaction schedule.
func BenchmarkEngineThroughputBatch(b *testing.B) {
	cfgs := protocols.MajorityConfig(32, 32)
	eng, err := engine.New(model.TW, protocols.Majority{}, cfgs, sched.NewRandom(1))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.StepBatch(1); err != nil { // warm the transition cache
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := eng.StepBatch(b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineThroughputLarge scales the throughput workload to large
// populations, slow path vs batched fast path. The dense-ID representation
// keeps the batch path's working set at 4 bytes per agent, so the gap widens
// with n.
func BenchmarkEngineThroughputLarge(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		n := n
		b.Run(fmt.Sprintf("slow/n=%d", n), func(b *testing.B) {
			eng, err := engine.New(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2, n/2), sched.NewRandom(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("batch/n=%d", n), func(b *testing.B) {
			eng, err := engine.New(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2, n/2), sched.NewRandom(1))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.StepBatch(1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := eng.StepBatch(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkRunUntilConvergence compares full convergence runs — the shape of
// every experiment in this repo — stepwise with a per-step predicate scan
// against batched with the predicate evaluated every 64 interactions.
func BenchmarkRunUntilConvergence(b *testing.B) {
	const n = 256
	done := func(c pp.Configuration) bool { return protocols.MajorityConverged(c, "A") }
	b.Run("slow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := engine.New(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2+8, n/2-8), sched.NewRandom(int64(i+1)))
			if err != nil {
				b.Fatal(err)
			}
			if ok, err := eng.RunUntil(done, 50_000_000); err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := engine.New(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2+8, n/2-8), sched.NewRandom(int64(i+1)))
			if err != nil {
				b.Fatal(err)
			}
			if _, ok, err := eng.RunUntilEvery(done, 64, 50_000_000); err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
}

// BenchmarkSlowdown compares native TW against the two simulators on the
// same workload, per *simulated* step (the PERF experiment).
func BenchmarkSlowdown(b *testing.B) {
	simCfg := protocols.MajorityConfig(9, 7)
	done := func(c pp.Configuration) bool { return protocols.MajorityConverged(c, "A") }
	b.Run("nativeTW", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := engine.New(model.TW, protocols.Majority{}, simCfg, sched.NewRandom(int64(i+1)))
			if err != nil {
				b.Fatal(err)
			}
			if ok, err := eng.RunUntil(done, 5_000_000); err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("skno-I3", func(b *testing.B) {
		p := protocols.Majority{}
		s := sim.SKnO{P: p, O: 1}
		benchSimulated(b, model.I3, s, func() pp.Configuration { return s.WrapConfig(simCfg) },
			simCfg, p.Delta,
			func() adversary.Adversary { return adversary.NewBudgeted(3, 0.01, 1) }, done)
	})
	b.Run("sid-IO", func(b *testing.B) {
		p := protocols.Majority{}
		s := sim.SID{P: p}
		benchSimulated(b, model.IO, s, func() pp.Configuration { return s.WrapConfig(simCfg) },
			simCfg, p.Delta, nil, done)
	})
}

// BenchmarkVerify measures the Definition-3/4 verifier itself (matching +
// replay) on a recorded SKnO execution.
func BenchmarkVerify(b *testing.B) {
	p := protocols.Pairing{}
	simCfg := protocols.PairingConfig(3, 3)
	s := sim.SKnO{P: p, O: 1}
	rec := &trace.Recorder{}
	eng, err := engine.New(model.I3, s, s.WrapConfig(simCfg), sched.NewRandom(5),
		engine.WithAdversary(adversary.NewBudgeted(6, 0.02, 1)),
		engine.WithRecorder(rec))
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.RunSteps(20000); err != nil {
		b.Fatal(err)
	}
	events := rec.Events()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := verify.VerifyStrict(events, simCfg, p.Delta)
		if err := rep.Err(); err != nil {
			b.Fatal(err)
		}
		if err := verify.Replay(rep, events, simCfg, p.Delta); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(events)), "events")
}

// BenchmarkFacade measures the public API end to end (system assembly + a
// verified fault-tolerant run), guarding against facade regressions.
func BenchmarkFacade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := popsim.SKnO(protocols.Pairing{}, 1)
		sys, err := popsim.NewSystem(popsim.SystemSpec{
			Model:     popsim.I3,
			Simulate:  &s,
			Initial:   protocols.PairingConfig(2, 2),
			Seed:      int64(i + 1),
			Adversary: popsim.BudgetedAdversary(int64(i+2), 0.05, 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		ok, err := sys.RunUntil(func(c popsim.Configuration) bool {
			return protocols.PairingDone(c, 2, 2)
		}, 2_000_000)
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
		if _, err := sys.VerifySimulation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughputSharded measures the sharded execution mode
// (internal/par) against the sequential batched fast path on the majority
// workload at n = 10⁵, across shard counts. The sharded rows pay the
// epoch-exchange overhead (~n/P deals per P·Epoch/P interactions per
// worker); on a multi-core host P=4 clears 2.5× over seq-batch, while on a
// single-core host they serialize and only measure the overhead.
func BenchmarkEngineThroughputSharded(b *testing.B) {
	const n = 100_000
	b.Run("seq-batch", func(b *testing.B) {
		eng, err := engine.New(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2, n/2), sched.NewRandom(1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.StepBatch(1); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		if _, err := eng.StepBatch(b.N); err != nil {
			b.Fatal(err)
		}
	})
	for _, p := range []int{1, 2, 4, 8} {
		p := p
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			sr, err := par.NewSharded(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2, n/2),
				1, par.ShardedOptions{Shards: p})
			if err != nil {
				b.Fatal(err)
			}
			if err := sr.RunSteps(1); err != nil { // warm caches and buckets
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := sr.RunSteps(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkEnsembleSweep measures the ensemble layer end to end: K seeded
// majority convergence runs (n = 512) fanned across the worker pool, the
// shape of every multi-seed sweep in the experiment harness.
func BenchmarkEnsembleSweep(b *testing.B) {
	done := func(c pp.Configuration) bool { return protocols.MajorityConverged(c, "A") }
	for i := 0; i < b.N; i++ {
		res, err := popsim.RunEnsemble(context.Background(), popsim.EnsembleSpec{
			Spec: popsim.SystemSpec{
				Model:    popsim.TW,
				Protocol: protocols.Majority{},
				Initial:  protocols.MajorityConfig(264, 248),
			},
			Runs:     8,
			BaseSeed: int64(i*8 + 1),
			Until:    done,
			Horizon:  50_000_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Converged != 8 {
			b.Fatalf("converged %d/8", res.Converged)
		}
	}
	b.ReportMetric(8, "runs/op")
}

// BenchmarkSimWrapped measures wrapped-simulator throughput — the
// fault-tolerant simulation regime the canonical behavioral keys unlock:
// SKnO(o=0) over majority under IT (the Corollary-1 simulator), n = 256,
// stepwise slow path vs interned batched fast path vs sharded P ∈ {2, 4}
// (events recorded everywhere, as simulator runs do). CI publishes this
// family as the BENCH_sim.json artifact, tracking the simulation-regime
// speedup the way BENCH_sharded.json tracks native multi-core scaling.
func BenchmarkSimWrapped(b *testing.B) {
	const n = 256
	s := sim.SKnO{P: protocols.Majority{}, O: 0}
	mkCfg := func() pp.Configuration { return s.WrapConfig(protocols.MajorityConfig(n/2+16, n/2-16)) }
	b.Run("slow", func(b *testing.B) {
		rec := &trace.Recorder{}
		eng, err := engine.New(model.IT, s, mkCfg(), sched.NewRandom(1), engine.WithRecorder(rec))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Step(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		rec := &trace.Recorder{}
		eng, err := engine.New(model.IT, s, mkCfg(), sched.NewRandom(1), engine.WithRecorder(rec))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.StepBatch(1); err != nil { // warm the transition cache
			b.Fatal(err)
		}
		b.ResetTimer()
		if _, err := eng.StepBatch(b.N); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if !eng.FastPathActive() {
			b.Fatal("fast path bailed out mid-benchmark")
		}
		b.ReportMetric(float64(eng.InternedStates()), "states")
	})
	for _, p := range []int{2, 4} {
		p := p
		b.Run(fmt.Sprintf("sharded/P=%d", p), func(b *testing.B) {
			sr, err := par.NewSharded(model.IT, s, mkCfg(), 1,
				par.ShardedOptions{Shards: p, RecordEvents: true})
			if err != nil {
				b.Fatal(err)
			}
			if err := sr.RunSteps(1); err != nil { // warm caches and buckets
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := sr.RunSteps(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkCountEngineThroughput measures raw stepping on the counts
// backend against the batched agent-vector fast path at n ∈ {10⁴, 10⁶}
// (majority, TW). Raw stepping is NOT where the counts backend wins while
// the agent path's 4·n-byte ID vector still fits cache (the batch column is
// faster here) — the backend's O(|Q|) working set pays off in observation
// and at populations beyond cache. These rows exist to track the
// per-interaction sampling cost; the ≥10× million-agent gate is the
// BenchmarkCountEngineConvergence n=10⁶ pair in the same BENCH_counts.json
// artifact.
func BenchmarkCountEngineThroughput(b *testing.B) {
	for _, n := range []int{10_000, 1_000_000} {
		n := n
		b.Run(fmt.Sprintf("batch/n=%d", n), func(b *testing.B) {
			eng, err := engine.New(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2, n/2), sched.NewRandom(1))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.StepBatch(1); err != nil { // warm the transition cache
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := eng.StepBatch(b.N); err != nil {
				b.Fatal(err)
			}
		})
		b.Run(fmt.Sprintf("counts/n=%d", n), func(b *testing.B) {
			ce, err := engine.NewCountEngine(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2, n/2), 1, engine.CountOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if err := ce.RunSteps(1); err != nil { // warm the transition cache
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := ce.RunSteps(b.N); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(ce.BlockLen()), "block")
		})
	}
}

// BenchmarkCountEngineConvergence runs majority to convergence at
// n ∈ {10⁴, 10⁶} — the end-to-end shape the counts backend exists for:
// stepping *and* observation both off the O(n) agent vector. The batched
// rows drive RunUntilEvery (predicate every 1024 interactions, O(n) scans
// and O(n) bisection arming); the counts rows drive CountEngine.RunUntil
// (O(|Q|) predicate, O(|Q|) arming). The n=10⁶ pair is the ≥10× gate
// recorded in BENCH_counts.json.
func BenchmarkCountEngineConvergence(b *testing.B) {
	for _, n := range []int{10_000, 1_000_000} {
		n := n
		margin := n / 50
		b.Run(fmt.Sprintf("batch/n=%d", n), func(b *testing.B) {
			steps := 0
			for i := 0; i < b.N; i++ {
				eng, err := engine.New(model.TW, protocols.Majority{},
					protocols.MajorityConfig(n/2+margin, n/2-margin), sched.NewRandom(int64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				done := func(c pp.Configuration) bool { return protocols.MajorityConverged(c, "A") }
				_, ok, err := eng.RunUntilEvery(done, 1024, 1<<40)
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
				steps += eng.Steps()
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
		})
		b.Run(fmt.Sprintf("counts/n=%d", n), func(b *testing.B) {
			steps := 0
			for i := 0; i < b.N; i++ {
				ce, err := engine.NewCountEngine(model.TW, protocols.Majority{},
					protocols.MajorityConfig(n/2+margin, n/2-margin), int64(i+1), engine.CountOptions{})
				if err != nil {
					b.Fatal(err)
				}
				out := protocols.Majority{}
				in := ce.Interner()
				_, ok, err := ce.RunUntil(func(c pp.Counts) bool {
					for id, v := range c {
						if v != 0 && out.Output(in.State(uint32(id))) != "A" {
							return false
						}
					}
					return true
				}, 1024, 1<<40)
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
				steps += ce.Steps()
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
		})
	}
}

// BenchmarkStateCountsPredicate measures the counts view's two predicate
// surfaces on a composite-keyed state space (ModuloState, whose Key() builds
// a string): the key-based Count, which pays Key() plus a map probe on every
// lookup, against the dense-ID pair — IDOf resolved once, CountByID per
// evaluation. ReportAllocs pins the satellite claim: the key rows allocate
// on every op, the id rows allocate zero.
func BenchmarkStateCountsPredicate(b *testing.B) {
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.TW,
		Protocol: protocols.Modulo{M: 2},
		Initial:  protocols.ModuloConfig(1024, 384),
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	sc := sys.Counts()
	odd := protocols.ModuloState{Value: 1, Active: true}
	even := protocols.ModuloState{Value: 0, Active: true}
	b.Run("key", func(b *testing.B) {
		b.ReportAllocs()
		var acc int64
		for i := 0; i < b.N; i++ {
			acc += sc.Count(odd) - sc.Count(even)
		}
		benchSink = acc
	})
	b.Run("id", func(b *testing.B) {
		b.ReportAllocs()
		idOdd, idEven := sc.IDOf(odd), sc.IDOf(even)
		if idOdd < 0 || idEven < 0 {
			b.Fatal("states missing from the snapshot")
		}
		var acc int64
		for i := 0; i < b.N; i++ {
			acc += sc.CountByID(idOdd) - sc.CountByID(idEven)
		}
		benchSink = acc
	})
}

var benchSink int64

// BenchmarkRunUntilArming is the regression guard for the convergence
// drivers' arming cost: RunUntilEvery's exact-hitting instrumentation
// snapshots the chunk start before every chunk — an O(n) ID copy on the
// agent-vector engine versus an O(|Q|) counts copy on the counts backend.
// With a sparse predicate (every = 64) at n = 10⁵ the agent-vector row is
// dominated by exactly that arming traffic, which is the regression this
// benchmark pins.
func BenchmarkRunUntilArming(b *testing.B) {
	const n = 100_000
	never := func(pp.Configuration) bool { return false }
	b.Run("agent", func(b *testing.B) {
		eng, err := engine.New(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2, n/2), sched.NewRandom(1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.StepBatch(1); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		if _, ok, err := eng.RunUntilEvery(never, 64, b.N); ok || err != nil {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	})
	b.Run("counts", func(b *testing.B) {
		ce, err := engine.NewCountEngine(model.TW, protocols.Majority{}, protocols.MajorityConfig(n/2, n/2), 1, engine.CountOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := ce.RunSteps(1); err != nil {
			b.Fatal(err)
		}
		neverC := func(pp.Counts) bool { return false }
		b.ResetTimer()
		if _, ok, err := ce.RunUntil(neverC, 64, b.N); ok || err != nil {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	})
}

// BenchmarkSimWrappedConvergence runs the thm31-style simulated convergence
// workload end to end — SKnO(o=0)/majority under IT until the projected
// majority verdict stabilizes — on the stepwise driver vs the batched
// RunUntilEvery driver. The ratio of the two ns/op columns is the
// simulation-regime speedup the canonical keys were built for.
func BenchmarkSimWrappedConvergence(b *testing.B) {
	const n = 128
	s := sim.SKnO{P: protocols.Majority{}, O: 0}
	mkCfg := func() pp.Configuration { return s.WrapConfig(protocols.MajorityConfig(n/2+8, n/2-8)) }
	done := func(c pp.Configuration) bool { return protocols.MajorityConverged(sim.Project(c), "A") }
	b.Run("slow", func(b *testing.B) {
		steps := 0
		for i := 0; i < b.N; i++ {
			eng, err := engine.New(model.IT, s, mkCfg(), sched.NewRandom(int64(i+1)))
			if err != nil {
				b.Fatal(err)
			}
			ok, err := eng.RunUntil(done, 50_000_000)
			if err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
			steps += eng.Steps()
		}
		b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
	})
	b.Run("batch", func(b *testing.B) {
		steps := 0
		for i := 0; i < b.N; i++ {
			eng, err := engine.New(model.IT, s, mkCfg(), sched.NewRandom(int64(i+1)))
			if err != nil {
				b.Fatal(err)
			}
			_, ok, err := eng.RunUntilEvery(done, 256, 50_000_000)
			if err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
			steps += eng.Steps()
		}
		b.ReportMetric(float64(steps)/float64(b.N), "steps/run")
	})
}
