GO ?= go

.PHONY: all build vet test bench gate baseline pgo serve loadtest smoke

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Compile-and-run every benchmark once (the CI smoke; the million-agent
# agent-vector convergence reference is minutes long and skipped here too).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -skip 'CountEngineConvergence/batch/n=1000000' ./...

# Enforce the ns/op budgets locally — the same perf/budgets_*.json rules CI
# applies to the BENCH_counts and BENCH_sharded artifacts.
gate:
	{ $(GO) test -run '^$$' -bench 'CountEngineThroughput' -benchtime 2000000x . ; \
	  $(GO) test -run '^$$' -bench 'RunUntilArming' -benchtime 200000x . ; } \
	    | $(GO) run ./cmd/benchgate -budgets perf/budgets_counts.json
	@if [ "$$(getconf _NPROCESSORS_ONLN)" -ge 4 ]; then \
	  $(GO) test -run '^$$' -bench 'EngineThroughputSharded' -benchtime 2000000x -cpu 4 . \
	      | $(GO) run ./cmd/benchgate -budgets perf/budgets_sharded.json ; \
	else \
	  echo "skipping sharded gate: P=4 workers serialize below 4 cores (CI enforces it on 4-core runners)" ; \
	fi
	$(GO) test -run '^$$' -bench 'EdgeSampler' -benchtime 2000000x ./internal/sched \
	    | $(GO) run ./cmd/benchgate -budgets perf/budgets_topology.json
	@if [ "$$(getconf _NPROCESSORS_ONLN)" -ge 4 ]; then \
	  { $(GO) test -run '^$$' -bench 'BatchDynamicsThroughput|HybridThroughput' -benchtime 100000000x -cpu 4 . ; \
	    $(GO) test -run '^$$' -bench 'BatchConsensus' -benchtime 1x -timeout 30m . ; } \
	      | $(GO) run ./cmd/benchgate -budgets perf/budgets_batch.json ; \
	else \
	  echo "skipping batch gate: the hybrid P=4 ratio needs 4 cores (CI enforces it on 4-core runners)" ; \
	fi
	{ $(GO) test -run '^$$' -bench 'ObsOverhead/counts' -benchtime 2000000x . ; \
	  $(GO) test -run '^$$' -bench 'ObsOverhead/batch' -benchtime 100000000x . ; } \
	    | $(GO) run ./cmd/benchgate -budgets perf/budgets_obs.json

# Refresh the committed benchstat baselines (perf/baseline_*.txt) from this
# machine. CI's delta report compares its fresh runs against these, so
# regenerate them on a quiet machine and commit alongside perf changes.
baseline:
	{ $(GO) test -run '^$$' -bench 'CountEngineThroughput' -benchtime 2000000x -count 3 . ; \
	  $(GO) test -run '^$$' -bench 'RunUntilArming' -benchtime 200000x -count 3 . ; } \
	    | $(GO) run ./cmd/benchgate -extract > perf/baseline_counts.txt
	$(GO) test -run '^$$' -bench 'EngineThroughputSharded' -benchtime 2000000x -count 3 . \
	    | $(GO) run ./cmd/benchgate -extract > perf/baseline_sharded.txt

# Run the simulation job server (see cmd/popsimd for the flag set and
# internal/serve for the API).
serve:
	$(GO) run ./cmd/popsimd

# End-to-end server smoke: million-agent job over HTTP, cache hit on
# resubmission, metrics, clean SIGTERM drain (the CI serve-smoke job).
smoke:
	./examples/serve/smoke.sh

# Load-test the job server over its real HTTP API and record the throughput
# trajectory the way the engine benchmarks do (BENCH_serve.json in CI).
loadtest:
	$(GO) test -json -run '^$$' -bench 'ServeLoad' -benchtime 20x ./internal/serve \
	    | tee BENCH_serve.json

# Refresh the committed PGO profiles: profile the hot benchmark families
# (count sampler, sharded workers, batched engine, wrapped simulators) and
# install the profile as default.pgo next to each main package — go ≥ 1.21
# consumes it automatically on `go build`.
pgo:
	$(GO) test -run '^$$' -bench 'CountEngineThroughput|EngineThroughputSharded|EngineThroughputLarge|SimWrapped$$' \
	    -benchtime 1000000x -cpuprofile cpu.prof -o bench.test .
	$(GO) tool pprof -proto cpu.prof > cmd/ppsim/default.pgo
	cp cmd/ppsim/default.pgo cmd/experiments/default.pgo
	rm -f cpu.prof bench.test
