package popsim

import (
	"errors"

	"popsim/internal/engine"
	"popsim/internal/par"
	"popsim/internal/pp"
)

// HybridOptions tune hybrid (sharded×counts) execution; see
// par.HybridOptions.
type HybridOptions = par.HybridOptions

// HybridResult is the outcome of one hybrid run.
type HybridResult struct {
	// Steps is the exact number of interactions applied. Hybrid workers
	// never stop mid-run, so a fixed-horizon run overshoots the horizon by
	// up to one collision-free run per worker (E ≈ 0.63·√(n/P) each).
	Steps int64
	// Converged reports whether the predicate was met.
	Converged bool
	// Backend names the backend that served the run: "hybrid" (P count
	// slices stepping batch dynamics in parallel), or the sequential counts
	// backend ("counts"/"counts-batch") that absorbed a degraded run.
	Backend string
	// Degraded reports that the hybrid could not hold the run — the
	// interned state space outgrew the sharded dense-mirror bound — and the
	// run was executed on the sequential counts backend instead, from the
	// system's current configuration, for the full horizon. DegradedReason
	// carries the hybrid failure.
	Degraded       bool
	DegradedReason string
	// SimEvents is the number of simulated-state update events the run
	// emitted (simulator systems only; 0 for native protocols).
	SimEvents int
	// Final is a detached counts snapshot of the final configuration,
	// projected for simulator systems (matching what the predicate saw).
	Final *StateCounts
}

// RunHybridCounts executes this system's workload on P sharded×counts
// hybrid workers (par.HybridRunner): each worker owns a full O(|Q|) counts
// vector over a population slice and steps the collision-aware batch
// dynamics locally, exchanging population via multivariate-hypergeometric
// splits at epoch barriers — the parallel tier of the counts backend, built
// for populations (10⁸–10⁹) whose per-agent representation does not fit.
// pred (optional, count-based, projected for simulator systems) is
// evaluated at barrier granularity every `every` interactions (every < 1
// means once per epoch) until it holds or at least horizon interactions
// have been applied.
//
// Hybrid execution is a distinct execution mode: determinism is per
// (seed, P) — not per seed alone — and equivalence with the sequential
// samplers is statistical, like RunSharded and the batch tier it builds on.
// The annealed counts contract applies: complete and other
// vertex-transitive topologies only (the engine rejects the rest). The
// system's own engine, scheduler position and trace are untouched; specs
// carrying a custom Scheduler or an Adversary return ErrCountsSpec. If the
// interned state space outgrows the sharded bound — at construction or
// mid-run — the run degrades to the sequential counts backend (whose
// overflow map absorbs wider state spaces) instead of failing: the result
// carries Degraded and the hybrid failure as DegradedReason. The view
// passed to pred aliases live runner state and is valid only during the
// call.
func (s *System) RunHybridCounts(opts HybridOptions, pred func(*StateCounts) bool, every, horizon int) (*HybridResult, error) {
	if s.spec.Scheduler != nil || s.spec.Adversary != nil {
		return nil, ErrCountsSpec
	}
	protocol := s.spec.Protocol
	if s.spec.Simulate != nil {
		protocol = s.spec.Simulate.Protocol
		// Count-only tracking, as in RunSharded: the facade reports
		// SimEvents; counts agents have no identity to attribute a full
		// event stream to.
		opts.TrackEvents = true
	}
	// Inherit the system's fast-path state bound as a default, clamped to
	// the sharded subsystem's dense-mirror cap; an explicit opts.MaxStates
	// wins (NewHybrid rejects values above the cap loudly).
	if opts.MaxStates <= 0 && s.spec.MaxFastStates > 0 {
		opts.MaxStates = s.spec.MaxFastStates
		if opts.MaxStates > par.MaxShardedStates {
			opts.MaxStates = par.MaxShardedStates
		}
	}
	// The hybrid steps complete-graph batch dynamics per slice; under the
	// counts backend's annealed contract that is exactly the mean-field
	// dynamics of any vertex-transitive topology, and the rest are outside
	// the counts contract altogether (quenched graphical runs use
	// RunSharded, which pins vertices to shards).
	if !s.spec.Topology.VertexTransitive() {
		return nil, errors.Join(ErrCountsSpec, errors.New("topology "+s.spec.Topology.String()+" is outside the annealed counts contract"))
	}
	var hr *par.HybridRunner
	var err error
	if s.countsNative() {
		hr, err = par.NewHybridFromCounts(s.spec.Model, protocol, s.cstates, s.ccounts, s.spec.Seed, opts)
	} else {
		hr, err = par.NewHybrid(s.spec.Model, protocol, s.eng.Config(), s.spec.Seed, opts)
	}
	if err != nil {
		if errors.Is(err, par.ErrStateSpace) {
			return s.runHybridDegraded(protocol, pred, every, horizon, err)
		}
		return nil, err
	}
	if s.probe != nil {
		hr.SetProbe(s.probe)
	}
	project := s.spec.Simulate != nil
	res := &HybridResult{Backend: "hybrid"}
	if pred == nil {
		err = hr.RunSteps(horizon)
	} else {
		view := &StateCounts{}
		_, res.Converged, err = hr.RunUntilCounts(func(c pp.Counts) bool {
			refreshView(view, hr.Interner(), c)
			if project {
				return pred(view.Projected())
			}
			return pred(view)
		}, every, horizon)
	}
	if err != nil {
		if errors.Is(err, par.ErrStateSpace) {
			return s.runHybridDegraded(protocol, pred, every, horizon, err)
		}
		return nil, err
	}
	res.Steps = hr.Steps()
	res.SimEvents = hr.EventCount()
	res.Final = newStateCounts(hr.Interner(), hr.Counts())
	if project {
		res.Final = res.Final.Projected()
	}
	return res, nil
}

// runHybridDegraded is RunHybridCounts's fallback: the hybrid's dense-only
// state bound overflowed, so the run executes on the sequential counts
// backend — same seed, from the system's current configuration, full
// horizon — whose overflow map tolerates the wider state space. A further
// counts failure (the sequential bound overflowed too) surfaces as the
// error; counts-native systems have no agent-vector engine left to degrade
// to, and agent-backed callers wanting that extra hop use RunUntilCounts.
func (s *System) runHybridDegraded(protocol any, pred func(*StateCounts) bool, every, horizon int, cause error) (*HybridResult, error) {
	s.probe.Degrade("hybrid", "counts", 0, cause.Error())
	var ce *engine.CountEngine
	var err error
	if s.countsNative() {
		ce, err = engine.NewCountEngineFromCounts(s.spec.Model, protocol, s.cstates, s.ccounts, s.spec.Seed, s.countOptions())
	} else {
		ce, err = engine.NewCountEngine(s.spec.Model, protocol, s.eng.Config(), s.spec.Seed, s.countOptions())
	}
	if err != nil {
		return nil, err
	}
	if every < 1 {
		every = 64 // the hybrid's "once per epoch" has no analogue here
	}
	cres, err := s.driveCountEngine(ce, pred, every, horizon)
	if err != nil {
		return nil, err
	}
	return &HybridResult{
		Steps:          int64(cres.Steps),
		Converged:      cres.Converged,
		Backend:        cres.Backend,
		Degraded:       true,
		DegradedReason: cause.Error(),
		SimEvents:      cres.SimEvents,
		Final:          cres.Final,
	}, nil
}
