package popsim_test

import (
	"errors"
	"testing"

	"popsim"
	"popsim/internal/protocols"
)

// majorityCountsDone is the O(|Q|) convergence predicate the CLI and the
// serving layer use for the majority workload.
func majorityCountsDone(sc *popsim.StateCounts) bool {
	out := protocols.Majority{}
	return sc.CountFunc(func(s popsim.State) bool { return out.Output(s) == "A" }) == sc.N()
}

func countsJobSpec(n int) popsim.SystemSpec {
	return popsim.SystemSpec{
		Model:    popsim.TW,
		Protocol: protocols.Majority{},
		Initial:  protocols.MajorityConfig(n/2+16, n/2-16),
		Seed:     9,
	}
}

// TestCountsJobInterruptResume pins the facade-level round trip the job
// server relies on: a run driven in slices with a checkpoint mid-way, handed
// to a *fresh* System built from the same spec, converges at the identical
// exact hitting step with identical final counts as the uninterrupted run.
func TestCountsJobInterruptResume(t *testing.T) {
	const n = 2048
	const horizon = 40 * n * 10

	// Uninterrupted reference.
	sysRef, err := popsim.NewSystem(countsJobSpec(n))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sysRef.NewCountsJob()
	if err != nil {
		t.Fatal(err)
	}
	refHit, ok, err := ref.Run(majorityCountsDone, 64, horizon)
	if err != nil || !ok {
		t.Fatalf("reference run: hit=%d ok=%v err=%v", refHit, ok, err)
	}

	// Interrupted run: slice, checkpoint, abandon, resume on a new System.
	sysA, err := popsim.NewSystem(countsJobSpec(n))
	if err != nil {
		t.Fatal(err)
	}
	jobA, err := sysA.NewCountsJob()
	if err != nil {
		t.Fatal(err)
	}
	slice := refHit / 2
	if _, ok, err := jobA.Run(majorityCountsDone, 64, slice); err != nil || ok {
		t.Fatalf("converged or failed before interruption: ok=%v err=%v", ok, err)
	}
	ck, err := jobA.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Steps() < slice || ck.N() != int64(n) || ck.States() == 0 || ck.SizeBytes() <= 0 {
		t.Fatalf("checkpoint meta: steps=%d n=%d states=%d bytes=%d", ck.Steps(), ck.N(), ck.States(), ck.SizeBytes())
	}

	sysB, err := popsim.NewSystem(countsJobSpec(n))
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := sysB.ResumeCountsJob(ck)
	if err != nil {
		t.Fatal(err)
	}
	if jobB.Steps() != ck.Steps() {
		t.Fatalf("resumed at %d, checkpoint says %d", jobB.Steps(), ck.Steps())
	}
	hit, ok, err := jobB.Run(majorityCountsDone, 64, horizon)
	if err != nil || !ok {
		t.Fatalf("resumed run: ok=%v err=%v", ok, err)
	}
	if hit != refHit {
		t.Fatalf("resumed hitting step %d, uninterrupted %d", hit, refHit)
	}

	// Final counts agree state by state.
	want, got := ref.Counts(), jobB.Counts()
	if want.N() != got.N() || want.Distinct() != got.Distinct() {
		t.Fatalf("final views differ: n %d vs %d, distinct %d vs %d", want.N(), got.N(), want.Distinct(), got.Distinct())
	}
	want.Each(func(s popsim.State, cnt int64) bool {
		if got.Count(s) != cnt {
			t.Fatalf("final count of %v: %d vs %d", s, got.Count(s), cnt)
		}
		return true
	})
}

// TestCountsJobSimulatorEvents checks wrapped simulator runs checkpoint with
// their event totals and projected observation intact.
func TestCountsJobSimulatorEvents(t *testing.T) {
	const n = 48
	simulate := popsim.SID(protocols.Majority{})
	spec := popsim.SystemSpec{
		Model:    popsim.IO,
		Simulate: &simulate,
		Initial:  protocols.MajorityConfig(n/2+4, n/2-4),
		Seed:     3,
	}
	mk := func() *popsim.CountsJob {
		sys, err := popsim.NewSystem(spec)
		if err != nil {
			t.Fatal(err)
		}
		j, err := sys.NewCountsJob()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	budget := 300 * n

	ref := mk()
	if err := ref.RunSteps(budget); err != nil {
		t.Fatal(err)
	}

	job := mk()
	if err := job.RunSteps(budget / 2); err != nil {
		t.Fatal(err)
	}
	ck, err := job.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := popsim.NewSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys2.ResumeCountsJob(ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.RunSteps(budget - ck.Steps()); err != nil {
		t.Fatal(err)
	}
	if res.SimEvents() != ref.SimEvents() {
		t.Fatalf("simulation events: resumed %d, uninterrupted %d", res.SimEvents(), ref.SimEvents())
	}
	// Projected views match (simulated states, counts folded).
	want, got := ref.Counts(), res.Counts()
	want.Each(func(s popsim.State, cnt int64) bool {
		if got.Count(s) != cnt {
			t.Fatalf("projected count of %v: %d vs %d", s, got.Count(s), cnt)
		}
		return true
	})
}

// TestCountsJobSpecContract pins the rejection of specs outside the counts
// contract.
func TestCountsJobSpecContract(t *testing.T) {
	spec := countsJobSpec(64)
	spec.Adversary = popsim.UOAdversary(1, 0.1, 1)
	sys, err := popsim.NewSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewCountsJob(); !errors.Is(err, popsim.ErrCountsSpec) {
		t.Fatalf("adversary spec: got %v, want ErrCountsSpec", err)
	}
	if _, err := sys.ResumeCountsJob(nil); !errors.Is(err, popsim.ErrCountsSpec) {
		t.Fatalf("nil checkpoint: got %v, want ErrCountsSpec", err)
	}
}
