package popsim

import (
	"errors"

	"popsim/internal/engine"
	"popsim/internal/pp"
	"popsim/internal/sched"
	"popsim/internal/sim"
	"popsim/internal/trace"
)

// StateCounts is the facade's configuration-vector view: how many agents are
// in each distinct state, without materializing per-agent storage. It is the
// observation surface of the counts backend — predicates over a StateCounts
// run in O(|Q|) regardless of the population size — and is also available as
// a snapshot of any system through System.Counts.
//
// Views handed to RunUntilCounts predicates alias live backend state: they
// are valid only during the predicate call. Snapshots returned by
// System.Counts and in results are detached.
type StateCounts struct {
	states []State
	counts []int64
	total  int64
	index  map[string]int
}

// newStateCounts builds a detached view from an interner and counts vector.
func newStateCounts(in *pp.Interner, counts pp.Counts) *StateCounts {
	sc := &StateCounts{
		states: make([]State, len(counts)),
		counts: append([]int64(nil), counts...),
	}
	for id := range counts {
		sc.states[id] = in.State(uint32(id))
		sc.total += counts[id]
	}
	return sc
}

// N returns the population size.
func (sc *StateCounts) N() int64 { return sc.total }

// Distinct returns the number of distinct states the view covers (including
// states whose count has dropped to zero over the run).
func (sc *StateCounts) Distinct() int { return len(sc.states) }

// Count returns the number of agents in the state with s's canonical key.
func (sc *StateCounts) Count(s State) int64 {
	return sc.CountByID(sc.IDOf(s))
}

// IDOf returns the dense state ID of the state with s's canonical key, or
// −1 when the view has not seen that state (yet). IDs index the view in
// state-interning order and are STABLE for the lifetime of a run: backend
// state spaces grow append-only, so an ID resolved on one predicate
// evaluation keeps denoting the same state on every later evaluation of the
// same run. That makes the IDOf/CountByID pair the zero-allocation predicate
// surface: resolve the ID once (IDOf pays s.Key(), which may allocate), then
// read CountByID per evaluation — no key built, no map probed. IDs are NOT
// comparable across detached snapshots or separate runs.
func (sc *StateCounts) IDOf(s State) int {
	if sc.index == nil {
		sc.index = make(map[string]int, len(sc.states))
		for i, st := range sc.states {
			sc.index[st.Key()] = i
		}
	}
	i, ok := sc.index[s.Key()]
	if !ok {
		return -1
	}
	return i
}

// CountByID returns the number of agents in the state with dense ID id —
// O(1), allocation-free. Out-of-range IDs (including IDOf's −1 and IDs the
// view has not grown to cover) count zero agents.
func (sc *StateCounts) CountByID(id int) int64 {
	if id < 0 || id >= len(sc.counts) {
		return 0
	}
	return sc.counts[id]
}

// CountFunc sums the counts of the states satisfying pred — O(|Q|), the
// counts analogue of Configuration.CountFunc.
func (sc *StateCounts) CountFunc(pred func(State) bool) int64 {
	var n int64
	for i, st := range sc.states {
		if sc.counts[i] != 0 && pred(st) {
			n += sc.counts[i]
		}
	}
	return n
}

// Each calls f for every state with a non-zero count; returning false stops
// the iteration.
func (sc *StateCounts) Each(f func(State, int64) bool) {
	for i, st := range sc.states {
		if sc.counts[i] == 0 {
			continue
		}
		if !f(st, sc.counts[i]) {
			return
		}
	}
}

// Projected folds a view of wrapped simulator states onto their simulated
// states (piP applied at the counts level, merging states that project to
// the same simulated state) — O(|Q|). Non-wrapped states map to themselves.
func (sc *StateCounts) Projected() *StateCounts {
	out := &StateCounts{index: make(map[string]int)}
	for i, st := range sc.states {
		p := st
		if w, ok := st.(sim.Wrapped); ok {
			p = w.Simulated()
		}
		k := p.Key()
		j, ok := out.index[k]
		if !ok {
			j = len(out.states)
			out.index[k] = j
			out.states = append(out.states, p)
			out.counts = append(out.counts, 0)
		}
		out.counts[j] += sc.counts[i]
		out.total += sc.counts[i]
	}
	return out
}

// snapshotCounts builds a detached counts snapshot of a configuration,
// folded onto simulated states when project is set — the O(n) construction
// behind System.Counts and the fallback paths' final snapshots.
func snapshotCounts(cfg Configuration, project bool) *StateCounts {
	in := pp.NewInterner()
	sc := newStateCounts(in, in.CountConfig(cfg, nil))
	if project {
		sc = sc.Projected()
	}
	return sc
}

// countsPredicate adapts a StateCounts predicate to a Configuration
// predicate for the agent-vector fallback paths, reusing one interner,
// counts scratch and view across evaluations: each check costs one counting
// pass over the configuration (interner map hits) instead of rebuilding
// interner and view from scratch.
func countsPredicate(pred func(*StateCounts) bool, project bool) func(Configuration) bool {
	in := pp.NewInterner()
	var scratch pp.Counts
	view := &StateCounts{}
	return func(c Configuration) bool {
		scratch = in.CountConfig(c, scratch)
		refreshView(view, in, scratch)
		if project {
			return pred(view.Projected())
		}
		return pred(view)
	}
}

// Counts returns a detached counts snapshot of the system's current
// (wrapped) configuration — O(n) to build, O(|Q|) to consume; for
// counts-native systems it reflects the initial cells and is O(|Q|)
// throughout. For simulator systems, chain .Projected() for the
// simulated-state view.
func (s *System) Counts() *StateCounts {
	if s.countsNative() {
		in := pp.NewInterner()
		var counts pp.Counts
		for i, st := range s.cstates {
			id := in.Intern(st)
			for int(id) >= len(counts) {
				counts = append(counts, 0)
			}
			counts[id] += s.ccounts[i]
		}
		return newStateCounts(in, counts)
	}
	return snapshotCounts(s.eng.Config(), false)
}

// BatchMode selects the counts backend's collision-aware batch tier; see
// engine.BatchMode. Batch mode is a DISTINCT execution mode like the block
// sampler: deterministic per seed, statistically equivalent to — never
// byte-identical with — the block and exact samplers.
type BatchMode = engine.BatchMode

// Batch tier selection for SystemSpec.CountBatch.
const (
	// BatchAuto enables batch dynamics at DefaultCountBatchN agents and up.
	BatchAuto = engine.BatchAuto
	// BatchOn forces batch dynamics at any population size.
	BatchOn = engine.BatchOn
	// BatchOff pins counts runs to the exact/block samplers.
	BatchOff = engine.BatchOff
)

// DefaultCountBatchN is the population threshold at or above which BatchAuto
// selects the collision-aware batch dynamics.
const DefaultCountBatchN = engine.DefaultCountBatchN

// newCountsNativeSystem assembles a System from InitialCounts: no
// agent-vector engine, no materialized population — the counts backend is
// the only execution surface. The spec is validated eagerly by building
// (and discarding) a counts engine, so bad model/protocol/topology
// combinations fail here rather than on the first run.
func newCountsNativeSystem(spec SystemSpec) (*System, error) {
	if spec.Initial != nil {
		return nil, errors.Join(ErrSpec, errors.New("set exactly one of Initial and InitialCounts"))
	}
	if spec.Protocol == nil || spec.Simulate != nil {
		return nil, errors.Join(ErrSpec, errors.New("InitialCounts requires a native Protocol (wrapped initial configurations are position-dependent; simulator systems build from Initial)"))
	}
	if spec.Scheduler != nil || spec.Adversary != nil {
		return nil, errors.Join(ErrSpec, errors.New("counts-native systems run the counts backend only; Scheduler and Adversary are outside its contract"))
	}
	states := make([]pp.State, len(spec.InitialCounts))
	counts := make(pp.Counts, len(spec.InitialCounts))
	for i, cs := range spec.InitialCounts {
		if cs.State == nil {
			return nil, errors.Join(ErrSpec, errors.New("InitialCounts cell with nil State"))
		}
		states[i] = cs.State
		counts[i] = cs.Count
	}
	s := &System{rec: &trace.Recorder{}, spec: spec, cstates: states, ccounts: counts}
	if _, err := engine.NewCountEngineFromCounts(spec.Model, spec.Protocol, states, counts, spec.Seed, s.countOptions()); err != nil {
		return nil, err
	}
	return s, nil
}

// countOptions is the engine.CountOptions every counts-backend execution of
// this system shares (detached runs, jobs, degrade paths).
func (s *System) countOptions() engine.CountOptions {
	return engine.CountOptions{
		MaxStates:   s.spec.MaxFastStates,
		TrackEvents: s.spec.Simulate != nil,
		Topology:    s.spec.Topology,
		Batch:       s.spec.CountBatch,
	}
}

// DefaultCountsBackendN is the population threshold at or above which
// RunUntilCounts picks the counts backend. Below it the batched agent-vector
// engine is already cache-resident and its O(n) observation is cheap at the
// default predicate cadences, so the threshold sits where the agent paths'
// per-chunk O(n) arming, materialization and predicate costs start to
// dominate convergence runs (see BenchmarkCountEngineConvergence).
const DefaultCountsBackendN = 1 << 16

// CountsRunResult is the outcome of a RunUntilCounts run.
type CountsRunResult struct {
	// Steps is the number of interactions consumed up to and including the
	// first one after which the predicate held — exact for absorbing
	// predicates on the counts backend — or the total consumed when not
	// Converged.
	Steps int
	// Converged reports whether the predicate was met.
	Converged bool
	// Backend names the execution backend that served the run: "counts"
	// (configuration-vector engine, exact/block samplers), "counts-batch"
	// (the same engine on the collision-aware batch dynamics — selected by
	// SystemSpec.CountBatch, automatically at DefaultCountBatchN agents) or
	// "batched" (agent-vector fast path — the small-population default, and
	// the fallback when a spec is outside the counts contract).
	Backend string
	// Degraded reports that the counts backend abandoned the run mid-way —
	// the interned state space outgrew its bound — and the run was finished
	// on the batched engine from the abandoned configuration, for the
	// remaining horizon. DegradedReason carries the counts failure.
	Degraded       bool
	DegradedReason string
	// SimEvents is the number of simulated-state update events the run
	// emitted (simulator systems only; 0 for native protocols).
	SimEvents int
	// Final is a detached counts snapshot of the final configuration,
	// projected for simulator systems (matching what the predicate saw).
	Final *StateCounts
}

// ErrCountsSpec reports a system spec outside the count-predicate runs'
// contract: like sharded runs, they are detached executions on fresh
// engines, so specs carrying a custom Scheduler (whose stream position
// belongs to the system's own engine) or an Adversary (stateful; a detached
// run would mutate it behind the system's back) are rejected.
var ErrCountsSpec = errors.New("popsim: spec not runnable with count predicates")

// RunUntilCounts runs this system's workload with a count predicate until it
// holds or horizon interactions have been applied, evaluating pred every
// `every` interactions (every < 1 means 64). For simulator systems the
// predicate observes the projected (simulated) counts, mirroring RunUntil.
//
// The backend is picked transparently: populations of at least
// DefaultCountsBackendN with canonically keyed states run on the O(|Q|)
// counts backend (engine.CountEngine — a distinct execution mode,
// statistically equivalent to the sequential scheduler; determinism is per
// seed and backend); smaller populations and non-canonical wrapped states
// run on the batched agent-vector engine with the counts view rebuilt per
// check. Within the counts backend, SystemSpec.CountBatch selects the
// collision-aware batch tier (Backend "counts-batch"; automatic at
// DefaultCountBatchN agents). Counts-native systems (InitialCounts) always
// run the counts backend, whatever the population size, and surface
// state-space overflow as the error instead of degrading. Specs carrying a custom Scheduler or an Adversary are not runnable
// detached and return ErrCountsSpec. Like RunSharded, the run starts
// from the system's current configuration and leaves the system's own
// engine, scheduler position and trace untouched. A counts run whose state
// space outgrows its bound mid-way degrades to the batched engine (the
// result carries Degraded and the reason), mirroring the batched path's own
// slow-path fallback.
func (s *System) RunUntilCounts(pred func(*StateCounts) bool, every, horizon int) (*CountsRunResult, error) {
	if s.spec.Scheduler != nil || s.spec.Adversary != nil {
		return nil, ErrCountsSpec
	}
	if every < 1 {
		every = 64
	}
	protocol := s.spec.Protocol
	if s.spec.Simulate != nil {
		protocol = s.spec.Simulate.Protocol
	}
	if s.countsNative() {
		// Counts-native systems have no agent vector to fall back to:
		// the counts backend is the whole contract, and state-space
		// overflow surfaces as the error.
		ce, err := engine.NewCountEngineFromCounts(s.spec.Model, protocol, s.cstates, s.ccounts, s.spec.Seed, s.countOptions())
		if err != nil {
			return nil, err
		}
		res, err := s.driveCountEngine(ce, pred, every, horizon)
		if err != nil {
			return nil, err
		}
		return res.CountsRunResult, nil
	}
	cfg := s.eng.Config()
	// The counts backend's annealed (mean-field) contract coincides with the
	// quenched graph only on the complete topology; every non-complete
	// topology runs its fixed graph exactly on the batched edge-sampling
	// engine, whatever the population size.
	if len(cfg) >= DefaultCountsBackendN && sim.Canonicalized(cfg) && s.spec.Topology.IsComplete() {
		res, err := s.runUntilCountsBackend(protocol, cfg, pred, every, horizon)
		if err == nil {
			return res.CountsRunResult, nil
		}
		if !errors.Is(err, engine.ErrStateSpace) {
			return nil, err
		}
		// Mid-run state-space overflow: finish on the batched engine from
		// the abandoned configuration, for the remaining horizon.
		s.probe.Degrade(res.Backend, "batched", int64(res.Steps), err.Error())
		fallback, ferr := s.runUntilCountsBatched(protocol, res.failedCfg, pred, every, horizon-res.Steps)
		if ferr != nil {
			return nil, ferr
		}
		fallback.Steps += res.Steps
		fallback.SimEvents += res.SimEvents
		fallback.Degraded = true
		fallback.DegradedReason = err.Error()
		return fallback.CountsRunResult, nil
	}
	res, err := s.runUntilCountsBatched(protocol, cfg, pred, every, horizon)
	if err != nil {
		return nil, err
	}
	return res.CountsRunResult, nil
}

// freshBatchedEngine builds a detached batched engine from cfg with the
// system's tuning limits and a fresh recorder — the construction shared by
// every facade fallback path (sharded degrade, counts degrade, small-n
// counts runs).
func (s *System) freshBatchedEngine(protocol any, cfg Configuration) (*trace.Recorder, *engine.Engine, error) {
	rec := &trace.Recorder{}
	opts := []engine.Option{engine.WithRecorder(rec)}
	if s.spec.MaxFastStates > 0 || s.spec.MaxBatchChunk > 0 {
		opts = append(opts, engine.WithFastLimits(s.spec.MaxFastStates, s.spec.MaxBatchChunk))
	}
	eng, err := engine.New(s.spec.Model, protocol, cfg, s.detachedScheduler(), opts...)
	if err != nil {
		return nil, nil, err
	}
	return rec, eng, nil
}

// detachedScheduler builds a fresh scheduler for a detached run: the
// topology's edge sampler over the system's materialized graph, or — for the
// complete topology — the plain uniform scheduler, both restarted from the
// spec seed (detached runs never consume the system's own stream).
func (s *System) detachedScheduler() sched.Batcher {
	return sched.NewEdgeScheduler(schedGraph(s.graph), s.spec.Seed)
}

// schedGraph converts the facade's *Graph into sched's structural interface
// with nil-ness preserved (a typed nil inside a non-nil interface would
// defeat NewEdgeScheduler's complete-topology arm).
func schedGraph(g *Graph) sched.Graph {
	if g == nil {
		return nil
	}
	return g
}

// countsResult is CountsRunResult plus the mid-run failure configuration the
// degrade path resumes from.
type countsResult struct {
	*CountsRunResult
	failedCfg Configuration
}

// runUntilCountsBackend drives the counts engine.
func (s *System) runUntilCountsBackend(protocol any, cfg Configuration, pred func(*StateCounts) bool, every, horizon int) (*countsResult, error) {
	ce, err := engine.NewCountEngine(s.spec.Model, protocol, cfg, s.spec.Seed, s.countOptions())
	if err != nil {
		if errors.Is(err, engine.ErrStateSpace) {
			// Too many distinct initial states for the counts backend at
			// all: the whole run belongs on the batched engine.
			s.probe.Degrade("counts", "batched", 0, err.Error())
			res, berr := s.runUntilCountsBatched(protocol, cfg, pred, every, horizon)
			if berr == nil {
				res.Degraded = true
				res.DegradedReason = err.Error()
			}
			return res, berr
		}
		return nil, err
	}
	return s.driveCountEngine(ce, pred, every, horizon)
}

// countsBackendName labels the execution mode a counts engine runs.
func countsBackendName(ce *engine.CountEngine) string {
	if ce.Batch() {
		return "counts-batch"
	}
	return "counts"
}

// driveCountEngine runs a built counts engine until pred holds (nil pred =
// the full horizon) and packages the result — shared by the size-selected
// backend path, counts-native runs and the hybrid degrade path. On mid-run
// state-space overflow the result carries the failure configuration for the
// degrade path, except on counts-native systems (materializing 10⁸–10⁹
// agents is exactly what counts-native construction exists to avoid —
// and they have no agent-vector fallback to hand it to).
func (s *System) driveCountEngine(ce *engine.CountEngine, pred func(*StateCounts) bool, every, horizon int) (*countsResult, error) {
	if s.probe != nil {
		ce.SetProbe(s.probe)
	}
	in := ce.Interner()
	project := s.spec.Simulate != nil
	res := &countsResult{CountsRunResult: &CountsRunResult{Backend: countsBackendName(ce)}}
	var err error
	if pred == nil {
		err = ce.RunSteps(horizon)
		res.Steps = ce.Steps()
	} else {
		view := &StateCounts{}
		res.Steps, res.Converged, err = ce.RunUntil(func(c pp.Counts) bool {
			refreshView(view, in, c)
			if project {
				return pred(view.Projected())
			}
			return pred(view)
		}, every, horizon)
	}
	res.SimEvents = ce.EventCount()
	if err != nil {
		if errors.Is(err, engine.ErrStateSpace) {
			res.Steps = ce.Steps()
			if !s.countsNative() {
				res.failedCfg = ce.Config()
			}
		}
		return res, err
	}
	res.Final = newStateCounts(in, ce.Counts())
	if project {
		res.Final = res.Final.Projected()
	}
	return res, nil
}

// runUntilCountsBatched drives the batched agent-vector engine with the
// counts view rebuilt per predicate check (O(n) per check — the
// small-population and fallback mode).
func (s *System) runUntilCountsBatched(protocol any, cfg Configuration, pred func(*StateCounts) bool, every, horizon int) (*countsResult, error) {
	rec, eng, err := s.freshBatchedEngine(protocol, cfg)
	if err != nil {
		return nil, err
	}
	if s.probe != nil {
		eng.SetProbe(s.probe)
	}
	project := s.spec.Simulate != nil
	steps, ok, err := eng.RunUntilEvery(countsPredicate(pred, project), every, horizon)
	if err != nil {
		return nil, err
	}
	return &countsResult{CountsRunResult: &CountsRunResult{
		Steps:     steps,
		Converged: ok,
		Backend:   "batched",
		SimEvents: len(rec.Events()),
		Final:     snapshotCounts(eng.Config(), project),
	}}, nil
}

// refreshView points a reusable StateCounts at live backend state — O(new
// states) per call, no allocation once the state space has been seen.
func refreshView(view *StateCounts, in *pp.Interner, counts pp.Counts) {
	for len(view.states) < len(counts) {
		id := len(view.states)
		view.states = append(view.states, in.State(uint32(id)))
		if view.index != nil {
			view.index[view.states[id].Key()] = id
		}
	}
	view.counts = counts
	var total int64
	for _, v := range counts {
		total += v
	}
	view.total = total
}
