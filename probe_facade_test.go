package popsim_test

import (
	"testing"

	"popsim"
	"popsim/internal/protocols"
)

// Facade probe contracts: one System probe follows runs across backend
// selection, CountsJob exposes the engine probe across checkpoint/resume,
// and terminal snapshots are deterministic per seed.

func TestSystemProbeCountsBackend(t *testing.T) {
	spec := countsMajoritySpec(40_000, 30_000, 3)
	spec.CountBatch = popsim.BatchOn
	sys, err := popsim.NewSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	probe := sys.Probe()
	res, err := sys.RunUntilCounts(allOutput("A"), 4096, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("majority did not converge: %+v", res)
	}
	snap := probe.Snapshot()
	if snap.Backend != "counts-batch" {
		t.Fatalf("probe backend = %q, want counts-batch (result backend %q)", snap.Backend, res.Backend)
	}
	if snap.Steps < int64(res.Steps) {
		t.Fatalf("probe steps %d behind hitting step %d", snap.Steps, res.Steps)
	}
	if snap.BatchRuns <= 0 {
		t.Fatalf("batch stats not published: %+v", snap)
	}
	if len(snap.Degrades) != 0 {
		t.Fatalf("unexpected degrade events: %+v", snap.Degrades)
	}
}

func TestCountsJobProbeAcrossResume(t *testing.T) {
	mk := func() *popsim.System {
		sys, err := popsim.NewSystem(countsMajoritySpec(900, 700, 5))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	job, err := mk().NewCountsJob()
	if err != nil {
		t.Fatal(err)
	}
	probe := job.Probe()
	if err := job.RunSteps(10_000); err != nil {
		t.Fatal(err)
	}
	ck, err := job.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	snap := probe.Snapshot()
	if snap.Steps != int64(job.Steps()) {
		t.Fatalf("probe steps = %d, job steps = %d", snap.Steps, job.Steps())
	}
	if snap.CheckpointSteps != int64(ck.Steps()) {
		t.Fatalf("probe checkpoint steps = %d, checkpoint = %d", snap.CheckpointSteps, ck.Steps())
	}

	resumed, err := mk().ResumeCountsJob(ck)
	if err != nil {
		t.Fatal(err)
	}
	resumed.SetProbe(probe) // carry the same probe across the resume
	if err := resumed.RunSteps(10_000); err != nil {
		t.Fatal(err)
	}
	snap = probe.Snapshot()
	if snap.Steps != int64(resumed.Steps()) {
		t.Fatalf("post-resume probe steps = %d, job steps = %d", snap.Steps, resumed.Steps())
	}
}

func TestSystemProbeDeterministicTerminal(t *testing.T) {
	run := func() popsim.ProbeSnapshot {
		spec := countsMajoritySpec(600, 424, 9)
		spec.CountBatch = popsim.BatchOn
		sys, err := popsim.NewSystem(spec)
		if err != nil {
			t.Fatal(err)
		}
		probe := sys.Probe()
		job, err := sys.NewCountsJob()
		if err != nil {
			t.Fatal(err)
		}
		job.SetProbe(probe)
		if err := job.RunSteps(20_000); err != nil {
			t.Fatal(err)
		}
		return probe.Snapshot()
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.States != b.States ||
		a.BatchRuns != b.BatchRuns || a.BatchCollisions != b.BatchCollisions ||
		a.BatchMeanRunLen != b.BatchMeanRunLen {
		t.Fatalf("same-seed terminal snapshots diverge:\n%+v\n%+v", a, b)
	}
}

func TestSystemProbeHybrid(t *testing.T) {
	spec := popsim.SystemSpec{
		Model:    popsim.TW,
		Protocol: protocols.Majority{},
		InitialCounts: []popsim.CountedState{
			{State: protocols.StrongA, Count: 2100},
			{State: protocols.StrongB, Count: 1996},
		},
		Seed: 7,
	}
	sys, err := popsim.NewSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	probe := sys.Probe()
	res, err := sys.RunHybridCounts(popsim.HybridOptions{Shards: 2}, nil, 0, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	snap := probe.Snapshot()
	if snap.Backend != "hybrid" {
		t.Fatalf("probe backend = %q, want hybrid (result backend %q)", snap.Backend, res.Backend)
	}
	if snap.Steps != res.Steps {
		t.Fatalf("probe steps = %d, result steps = %d", snap.Steps, res.Steps)
	}
	if len(snap.Workers) != 2 {
		t.Fatalf("worker cells = %d, want 2", len(snap.Workers))
	}
}
