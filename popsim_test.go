package popsim_test

import (
	"errors"
	"testing"

	"popsim"
	"popsim/internal/protocols"
)

func TestFacadeSKnOEndToEnd(t *testing.T) {
	s := popsim.SKnO(protocols.Pairing{}, 1)
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:     popsim.I3,
		Simulate:  &s,
		Initial:   protocols.PairingConfig(2, 2),
		Seed:      7,
		Adversary: popsim.BudgetedAdversary(8, 0.05, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := sys.RunUntil(func(c popsim.Configuration) bool {
		return protocols.PairingDone(c, 2, 2)
	}, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatalf("pairing not completed after %d steps", sys.Steps())
	}
	rep, err := sys.VerifySimulation()
	if err != nil {
		t.Fatalf("verification: %v", err)
	}
	if len(rep.Pairs) == 0 {
		t.Fatal("no simulated interactions")
	}
	if sys.SimulatedSteps() == 0 || sys.Omissions() > 1 {
		t.Fatalf("events=%d omissions=%d", sys.SimulatedSteps(), sys.Omissions())
	}
	// The strict (replay-exact) level also holds for this workload.
	if _, err := sys.VerifySimulationStrict(); err != nil {
		t.Fatalf("strict verification: %v", err)
	}
}

func TestFacadeSIDAndNaming(t *testing.T) {
	for name, mk := range map[string]func() popsim.Simulator{
		"sid":    func() popsim.Simulator { return popsim.SID(protocols.Majority{}) },
		"naming": func() popsim.Simulator { return popsim.Naming(protocols.Majority{}, 6) },
	} {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			s := mk()
			sys, err := popsim.NewSystem(popsim.SystemSpec{
				Model:    popsim.IO,
				Simulate: &s,
				Initial:  protocols.MajorityConfig(4, 2),
				Seed:     3,
			})
			if err != nil {
				t.Fatal(err)
			}
			done, err := sys.RunUntil(func(c popsim.Configuration) bool {
				return protocols.MajorityConverged(c, "A")
			}, 600000)
			if err != nil || !done {
				t.Fatalf("done=%v err=%v", done, err)
			}
			if _, err := sys.VerifySimulation(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFacadeNativeProtocol(t *testing.T) {
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:    popsim.TW,
		Protocol: protocols.LeaderElection{},
		Initial:  protocols.LeaderConfig(8),
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := sys.RunUntil(protocols.LeaderElected, 100000)
	if err != nil || !done {
		t.Fatalf("done=%v err=%v", done, err)
	}
	if _, err := sys.VerifySimulation(); !errors.Is(err, popsim.ErrSpec) {
		t.Fatalf("VerifySimulation on native system: err = %v, want ErrSpec", err)
	}
}

func TestFacadeSpecValidation(t *testing.T) {
	_, err := popsim.NewSystem(popsim.SystemSpec{Model: popsim.TW, Initial: protocols.LeaderConfig(4)})
	if !errors.Is(err, popsim.ErrSpec) {
		t.Fatalf("neither Simulate nor Protocol: err = %v", err)
	}
	s := popsim.SID(protocols.Pairing{})
	_, err = popsim.NewSystem(popsim.SystemSpec{
		Model: popsim.TW, Simulate: &s, Protocol: protocols.Pairing{},
		Initial: protocols.PairingConfig(1, 1),
	})
	if !errors.Is(err, popsim.ErrSpec) {
		t.Fatalf("both Simulate and Protocol: err = %v", err)
	}
}

func TestFacadeScriptedScheduler(t *testing.T) {
	run := popsim.Run{{Starter: 0, Reactor: 1}}
	sys, err := popsim.NewSystem(popsim.SystemSpec{
		Model:     popsim.TW,
		Protocol:  protocols.Pairing{},
		Initial:   protocols.PairingConfig(1, 1),
		Scheduler: popsim.ScriptScheduler(run, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunSteps(10); err != nil {
		t.Fatal(err)
	}
	if got := sys.Projected().Count(protocols.Served); got != 1 {
		t.Fatalf("served = %d, want 1", got)
	}
}
